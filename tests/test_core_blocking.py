"""Unit tests for :mod:`repro.core.blocking` (Δ^m, Δ^{m−1})."""

import pytest

from repro.core.blocking import lp_ilp_deltas, lp_max_deltas
from repro.exceptions import AnalysisError
from repro.experiments.figure1 import (
    DELTA3_LP_ILP,
    DELTA3_LP_MAX,
    DELTA4_LP_ILP,
    DELTA4_LP_MAX,
)
from repro.model import DAGTask, DagBuilder


class TestPaperExample:
    def test_lp_ilp_deltas(self, fig1_tasks):
        assert lp_ilp_deltas(fig1_tasks, 4) == (DELTA4_LP_ILP, DELTA3_LP_ILP)

    def test_lp_max_deltas(self, fig1_tasks):
        assert lp_max_deltas(fig1_tasks, 4) == (DELTA4_LP_MAX, DELTA3_LP_MAX)

    def test_lp_max_composition(self, fig1_tasks):
        """Δ⁴ = C3,1 + C4,1 + C4,4 + C2,2 = 6+5+5+4 = 20 (paper text)."""
        delta4, _ = lp_max_deltas(fig1_tasks, 4)
        assert delta4 == 6 + 5 + 5 + 4

    def test_ilp_tighter_than_max(self, fig1_tasks):
        ilp = lp_ilp_deltas(fig1_tasks, 4)
        mx = lp_max_deltas(fig1_tasks, 4)
        assert ilp[0] <= mx[0]
        assert ilp[1] <= mx[1]

    def test_rho_solver_variants_agree(self, fig1_tasks):
        assert lp_ilp_deltas(fig1_tasks, 4, rho_solver="ilp") == (
            DELTA4_LP_ILP,
            DELTA3_LP_ILP,
        )


class TestEdgeCases:
    def test_empty_lp_set(self):
        assert lp_max_deltas([], 4) == (0.0, 0.0)
        assert lp_ilp_deltas([], 4) == (0.0, 0.0)

    def test_single_core(self, fig1_tasks):
        """m = 1: Δ^0 must be 0 (no parallel blocking after start)."""
        delta_m, delta_m1 = lp_ilp_deltas(fig1_tasks, 1)
        assert delta_m == 6.0  # the largest single NPR (C3,1)
        assert delta_m1 == 0.0
        mx = lp_max_deltas(fig1_tasks, 1)
        assert mx == (6.0, 0.0)

    def test_bad_m(self, fig1_tasks):
        with pytest.raises(AnalysisError):
            lp_max_deltas(fig1_tasks, 0)
        with pytest.raises(AnalysisError):
            lp_ilp_deltas(fig1_tasks, 0)

    def test_bad_rho_solver(self, fig1_tasks):
        with pytest.raises(AnalysisError, match="unknown rho solver"):
            lp_ilp_deltas(fig1_tasks, 2, rho_solver="cplex")  # type: ignore[arg-type]


class TestSequentialTasksGap:
    """Chains expose LP-max's pessimism: it treats their NPRs as parallel."""

    @pytest.fixture
    def chain_tasks(self):
        tasks = []
        for i, wcets in enumerate(([9, 8, 7], [6, 5, 4])):
            builder = DagBuilder()
            names = [f"c{i}n{j}" for j in range(len(wcets))]
            for name, w in zip(names, wcets):
                builder.node(name, w)
            builder.chain(*names)
            tasks.append(
                DAGTask(f"chain{i}", builder.build(), period=1000.0, priority=i)
            )
        return tasks

    def test_gap_on_chains(self, chain_tasks):
        # LP-max pools 3 largest from each chain: 9+8+7+6 = 30 on m=4.
        mx = lp_max_deltas(chain_tasks, 4)
        assert mx[0] == 30.0
        # LP-ILP knows a chain occupies one core: 9 + 6 = 15.
        ilp = lp_ilp_deltas(chain_tasks, 4)
        assert ilp[0] == 15.0

    def test_mu_cache_reused(self, chain_tasks):
        cache: dict[str, list[float]] = {}
        first = lp_ilp_deltas(chain_tasks, 4, mu_cache=cache)
        assert set(cache) == {"chain0", "chain1"}
        # Tamper with the cache: the function must trust it.
        cache["chain0"] = [100.0, 0.0, 0.0, 0.0]
        second = lp_ilp_deltas(chain_tasks, 4, mu_cache=cache)
        assert second[0] > first[0]

    def test_short_cached_mu_rejected(self, chain_tasks):
        cache = {"chain0": [9.0]}
        with pytest.raises(AnalysisError, match="cached mu"):
            lp_ilp_deltas(chain_tasks, 4, mu_cache=cache)


class TestMonotonicity:
    def test_deltas_grow_with_m(self, fig1_tasks):
        previous = (0.0, 0.0)
        for m in range(1, 6):
            current = lp_ilp_deltas(fig1_tasks, m)
            assert current[0] >= previous[0]
            assert current[1] >= previous[1]
            previous = current

    def test_more_lp_tasks_more_blocking(self, fig1_tasks):
        partial = lp_ilp_deltas(fig1_tasks[:2], 4)
        full = lp_ilp_deltas(fig1_tasks, 4)
        assert full[0] >= partial[0]
        assert full[1] >= partial[1]
