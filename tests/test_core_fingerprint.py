"""Property tests of the content-addressed fingerprints.

The verdict cache and the μ memo key on
:func:`~repro.core.fingerprint.taskset_fingerprint`, so the whole cache
contract rests on two properties pinned down here: the fingerprint is
*invariant* under anything the analysis cannot observe (node names,
node/edge insertion order, raw priority values) and *sensitive* to
everything it can (WCETs, edges, periods, deadlines, task names, the
priority order).
"""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.fingerprint import dag_fingerprint, taskset_fingerprint
from repro.model.dag import DAG
from repro.model.node import Node
from repro.model.task import DAGTask
from repro.model.taskset import TaskSet
from tests.strategies import random_dags


def _rebuild(dag: DAG, mapping, node_order, edge_order) -> DAG:
    """The same graph under new node names and insertion orders."""
    nodes = [Node(mapping[name], dag.wcet(name)) for name in node_order]
    edges = [(mapping[u], mapping[v]) for u, v in edge_order]
    return DAG(nodes, edges)


class TestDagFingerprint:
    @given(data=st.data())
    def test_invariant_under_relabel_and_reorder(self, data):
        dag = data.draw(random_dags(min_nodes=2, max_nodes=8))
        names = list(dag.node_names)
        new_names = data.draw(
            st.permutations([f"r{i}" for i in range(len(names))])
        )
        mapping = dict(zip(names, new_names))
        node_order = data.draw(st.permutations(names))
        edge_order = data.draw(st.permutations(list(dag.edges)))
        twin = _rebuild(dag, mapping, node_order, edge_order)
        assert dag_fingerprint(twin) == dag_fingerprint(dag)

    @given(data=st.data())
    def test_sensitive_to_wcet(self, data):
        dag = data.draw(random_dags(min_nodes=1, max_nodes=6))
        names = list(dag.node_names)
        target = data.draw(st.sampled_from(names))
        nodes = [
            Node(n, dag.wcet(n) + (1.0 if n == target else 0.0))
            for n in names
        ]
        bumped = DAG(nodes, list(dag.edges))
        assert dag_fingerprint(bumped) != dag_fingerprint(dag)

    @given(data=st.data())
    def test_sensitive_to_added_edge(self, data):
        dag = data.draw(random_dags(min_nodes=2, max_nodes=6))
        names = list(dag.node_names)  # "n{i}" with edges i -> j, i < j
        present = set(dag.edges)
        candidates = [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
            if (names[i], names[j]) not in present
        ]
        assume(candidates)
        extra = data.draw(st.sampled_from(candidates))
        nodes = [Node(n, dag.wcet(n)) for n in names]
        grown = DAG(nodes, list(dag.edges) + [extra])
        assert dag_fingerprint(grown) != dag_fingerprint(dag)

    def test_sensitive_to_edge_direction(self):
        forward = DAG([Node("a", 1.0), Node("b", 2.0)], [("a", "b")])
        backward = DAG([Node("a", 1.0), Node("b", 2.0)], [("b", "a")])
        assert dag_fingerprint(forward) != dag_fingerprint(backward)

    def test_memoised_on_the_instance(self):
        dag = DAG([Node("a", 1.0), Node("b", 2.0)], [("a", "b")])
        first = dag_fingerprint(dag)
        assert dag.__dict__["_content_fingerprint"] == first
        assert dag_fingerprint(dag) is first


def _tasks(dag: DAG, priorities=(0, 1)) -> list[DAGTask]:
    span = max(sum(dag.wcet(n) for n in dag.node_names), 1.0)
    return [
        DAGTask(f"t{rank}", dag, period=span * 10, priority=priority)
        for rank, priority in enumerate(priorities)
    ]


class TestTasksetFingerprint:
    @given(data=st.data())
    def test_invariant_under_task_order_and_node_relabel(self, data):
        dag = data.draw(random_dags(min_nodes=1, max_nodes=6))
        base = TaskSet(_tasks(dag))
        # Same tasks handed over in the opposite order, over an
        # isomorphic relabelling of the shared graph.
        names = list(dag.node_names)
        mapping = dict(
            zip(names, data.draw(st.permutations(
                [f"x{i}" for i in range(len(names))]
            )))
        )
        twin_graph = _rebuild(
            dag, mapping, data.draw(st.permutations(names)), list(dag.edges)
        )
        span = max(sum(dag.wcet(n) for n in names), 1.0)
        shuffled = TaskSet([
            DAGTask("t1", twin_graph, period=span * 10, priority=1),
            DAGTask("t0", twin_graph, period=span * 10, priority=0),
        ])
        assert taskset_fingerprint(shuffled) == taskset_fingerprint(base)

    def test_priority_values_do_not_matter_but_order_does(self, diamond):
        span = 100.0
        def build(p0, p1):
            return TaskSet([
                DAGTask("t0", diamond, period=span, priority=p0),
                DAGTask("t1", diamond, period=span / 2, priority=p1),
            ])
        assert taskset_fingerprint(build(0, 1)) == taskset_fingerprint(
            build(10, 99)
        )
        # Swapping the *order* moves each task to a different rank.
        assert taskset_fingerprint(build(0, 1)) != taskset_fingerprint(
            build(1, 0)
        )

    def test_sensitive_to_task_name(self, diamond):
        base = TaskSet([DAGTask("t0", diamond, period=100.0, priority=0)])
        renamed = TaskSet([DAGTask("z0", diamond, period=100.0, priority=0)])
        assert taskset_fingerprint(base) != taskset_fingerprint(renamed)

    def test_sensitive_to_period_and_deadline(self, diamond):
        base = TaskSet([DAGTask("t", diamond, period=100.0, priority=0)])
        slower = TaskSet([DAGTask("t", diamond, period=200.0, priority=0)])
        tighter = TaskSet([
            DAGTask("t", diamond, period=100.0, deadline=50.0, priority=0)
        ])
        prints = {
            taskset_fingerprint(base),
            taskset_fingerprint(slower),
            taskset_fingerprint(tighter),
        }
        assert len(prints) == 3
