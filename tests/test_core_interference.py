"""Unit tests for :mod:`repro.core.interference`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interference import (
    higher_priority_interference,
    lower_priority_interference,
    workload_bound,
)
from repro.exceptions import AnalysisError
from repro.model import DAGTask, DagBuilder


@pytest.fixture
def periodic_task(diamond):
    # vol = 10, L = 8, T = D = 20
    return DAGTask("i", diamond, period=20.0, priority=0)


class TestWorkloadBound:
    def test_zero_window_with_carry_in(self, periodic_task):
        # Even a zero-length window can contain carry-in work when
        # R_i - vol/m > 0: shifted = 0 + 5 - 10/2 = 0 -> no work.
        assert workload_bound(periodic_task, 0.0, 2, response=5.0) == 0.0

    def test_one_full_period(self, periodic_task):
        # shifted = 20 + 5 - 5 = 20 -> 1 whole job + residual 0.
        value = workload_bound(periodic_task, 20.0, 2, response=5.0)
        assert value == 10.0

    def test_residual_capped_by_volume(self, periodic_task):
        # shifted = 15: 0 whole jobs, residual min(10, 2*15) = 10.
        assert workload_bound(periodic_task, 15.0, 2, response=5.0) == 10.0

    def test_residual_dense_execution(self, periodic_task):
        # shifted = 2: min(10, 2*2) = 4.
        assert workload_bound(periodic_task, 2.0, 2, response=5.0) == 4.0

    def test_monotone_in_window(self, periodic_task):
        values = [
            workload_bound(periodic_task, w, 4, response=8.0)
            for w in range(0, 100, 3)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_monotone_in_response(self, periodic_task):
        values = [
            workload_bound(periodic_task, 30.0, 4, response=r)
            for r in range(0, 20, 2)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_validation(self, periodic_task):
        with pytest.raises(AnalysisError):
            workload_bound(periodic_task, -1.0, 2, 5.0)
        with pytest.raises(AnalysisError):
            workload_bound(periodic_task, 1.0, 0, 5.0)
        with pytest.raises(AnalysisError):
            workload_bound(periodic_task, 1.0, 2, -5.0)


class TestHigherPriorityInterference:
    def test_empty_hp(self):
        assert higher_priority_interference((), 10.0, 4, {}) == 0.0

    def test_sums_over_tasks(self, diamond):
        t1 = DAGTask("a", diamond, period=20.0, priority=0)
        t2 = DAGTask("b", diamond, period=40.0, priority=1)
        responses = {"a": 10.0, "b": 15.0}
        total = higher_priority_interference([t1, t2], 30.0, 2, responses)
        expected = workload_bound(t1, 30.0, 2, 10.0) + workload_bound(
            t2, 30.0, 2, 15.0
        )
        assert total == expected

    def test_missing_response_rejected(self, periodic_task):
        with pytest.raises(AnalysisError, match="priority order"):
            higher_priority_interference([periodic_task], 10.0, 2, {})


class TestLowerPriorityInterference:
    def test_paper_equation3(self):
        # I_lp = Delta_m + p * Delta_{m-1}
        assert lower_priority_interference(19.0, 15.0, 3) == 19.0 + 3 * 15.0

    def test_zero_preemptions(self):
        assert lower_priority_interference(19.0, 15.0, 0) == 19.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            lower_priority_interference(-1.0, 0.0, 0)
        with pytest.raises(AnalysisError):
            lower_priority_interference(0.0, -1.0, 0)
        with pytest.raises(AnalysisError):
            lower_priority_interference(0.0, 0.0, -1)


class TestInterferenceMemo:
    """The memoised/vectorised ``I^hp_k`` path must be bit-identical."""

    @staticmethod
    def _taskset(seed: int, utilization: float):
        import numpy as np

        from repro.generator.profiles import GROUP1
        from repro.generator.taskset_gen import generate_taskset

        return generate_taskset(
            np.random.default_rng(seed), utilization, GROUP1
        )

    @given(
        seed=st.integers(0, 2**16),
        utilization=st.sampled_from((0.8, 1.5, 2.5)),
        window=st.floats(0.0, 500.0, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_memo_matches_seed_scalar_path(
        self, seed, utilization, window, data
    ):
        from repro.core.interference import InterferenceMemo

        ts = self._taskset(seed, utilization)
        m = 4
        responses = [
            data.draw(
                st.floats(0.0, 300.0, allow_nan=False), label=f"R_{i}"
            )
            for i in range(len(ts))
        ]
        memo = InterferenceMemo(ts, m)
        by_name = {t.name: r for t, r in zip(ts.tasks, responses)}
        for count in range(len(ts) + 1):
            expected = higher_priority_interference(
                ts.tasks[:count], window, m, by_name
            )
            assert memo.interference(count, window, responses[:count]) == expected
            # Memoised re-query returns the identical value.
            assert memo.interference(count, window, responses[:count]) == expected

    @given(
        seed=st.integers(0, 2**16),
        window=st.floats(0.0, 500.0, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_vector_batch_bit_identical_to_scalar_loop(
        self, seed, window, data
    ):
        from repro.core.interference import InterferenceMemo

        ts = self._taskset(seed, 2.0)
        m = 4
        responses = [
            data.draw(
                st.floats(0.0, 300.0, allow_nan=False), label=f"R_{i}"
            )
            for i in range(len(ts))
        ]
        # Force the numpy batch on one memo, forbid it on the other.
        batch = InterferenceMemo(ts, m, vector_min_tasks=1)
        scalar = InterferenceMemo(ts, m, vector_min_tasks=10**9)
        for count in range(len(ts) + 1):
            assert batch.interference(
                count, window, responses[:count]
            ) == scalar.interference(count, window, responses[:count])

    def test_preemptions_formula(self, diamond):
        from repro.core.interference import InterferenceMemo
        from repro.model.taskset import TaskSet

        ts = TaskSet([
            DAGTask("hi", diamond, period=20.0, priority=0),
            DAGTask("mid", diamond, period=30.0, priority=1),
            DAGTask("lo", diamond, period=50.0, priority=2),
        ])
        memo = InterferenceMemo(ts, 2)
        # q = |V| - 1 = 3 for the diamond; h over hp periods 20 and 30
        # in a window of 45 is ceil(45/20) + ceil(45/30) = 3 + 2 = 5.
        assert memo.preemptions(2, 45.0) == 3  # min(q=3, h=5)
        assert memo.preemptions(2, 0.0) == 0   # empty window
        assert memo.preemptions(0, 45.0) == 0  # no hp tasks
