"""Unit tests for :mod:`repro.core.preemptions` (h_k and p_k)."""

import pytest

from repro.core.preemptions import max_preemptions, releases_upper_bound
from repro.exceptions import AnalysisError
from repro.model import DAGTask, DagBuilder


def make_task(
    name: str,
    period: float,
    n_nodes: int = 3,
    priority: int = 0,
    wcet: float = 1.0,
):
    builder = DagBuilder()
    names = [f"{name}-{i}" for i in range(n_nodes)]
    for n in names:
        builder.node(n, wcet)
    builder.chain(*names)
    return DAGTask(name, builder.build(), period=period, priority=priority)


class TestReleasesUpperBound:
    def test_empty_hp(self):
        assert releases_upper_bound((), 100.0) == 0

    def test_zero_window(self):
        assert releases_upper_bound([make_task("a", 10.0)], 0.0) == 0

    def test_single_task_ceil(self):
        hp = [make_task("a", 10.0)]
        assert releases_upper_bound(hp, 5.0) == 1
        assert releases_upper_bound(hp, 10.0) == 1
        assert releases_upper_bound(hp, 10.5) == 2
        assert releases_upper_bound(hp, 25.0) == 3

    def test_exact_multiple_not_inflated_by_float_noise(self):
        """ceil(t/T) at an exact multiple must not jump one too high."""
        hp = [make_task("a", 0.1, wcet=0.01)]
        # 0.3 / 0.1 = 2.9999999999999996 in floats; ceil must give 3.
        assert releases_upper_bound(hp, 0.3) == 3

    def test_sums_over_tasks(self):
        hp = [make_task("a", 10.0), make_task("b", 7.0)]
        assert releases_upper_bound(hp, 21.0) == 3 + 3

    def test_negative_window_rejected(self):
        with pytest.raises(AnalysisError):
            releases_upper_bound((), -1.0)


class TestMaxPreemptions:
    def test_capped_by_q(self):
        task = make_task("k", 100.0, n_nodes=3)  # q = 2
        hp = [make_task("a", 1.0, wcet=0.1)]
        assert max_preemptions(task, hp, 50.0) == 2

    def test_capped_by_h(self):
        task = make_task("k", 100.0, n_nodes=10)  # q = 9
        hp = [make_task("a", 40.0)]
        assert max_preemptions(task, hp, 50.0) == 2

    def test_no_hp_tasks(self):
        task = make_task("k", 100.0)
        assert max_preemptions(task, (), 50.0) == 0

    def test_single_node_task_never_preempted(self):
        task = make_task("k", 100.0, n_nodes=1)  # q = 0
        hp = [make_task("a", 1.0, wcet=0.1)]
        assert max_preemptions(task, hp, 50.0) == 0
