"""Unit tests for :mod:`repro.core.rta` (Eqs. 1 and 4)."""

import math

import pytest

from repro.core.rta import response_time_bounds
from repro.exceptions import AnalysisError
from repro.model import DAGTask, DagBuilder, TaskSet


def chain_task(name, wcets, period, priority):
    builder = DagBuilder()
    names = [f"{name}{i}" for i in range(len(wcets))]
    for n, w in zip(names, wcets):
        builder.node(n, w)
    builder.chain(*names)
    return DAGTask(name, builder.build(), period=period, priority=priority)


def diamond_task(name, period, priority, scale=1.0):
    dag = (
        DagBuilder()
        .nodes({f"{name}s": 1 * scale, f"{name}a": 2 * scale,
                f"{name}b": 3 * scale, f"{name}t": 4 * scale})
        .fork(f"{name}s", [f"{name}a", f"{name}b"])
        .join([f"{name}a", f"{name}b"], f"{name}t")
        .build()
    )
    return DAGTask(name, dag, period=period, priority=priority)


class TestSingleTask:
    def test_isolated_bound_is_graham(self):
        """Alone, R = L + (vol - L)/m (no floor term)."""
        task = diamond_task("t", 100.0, 0)
        [res] = response_time_bounds(TaskSet([task]), 2)
        assert res.schedulable
        assert res.response == pytest.approx(8 + (10 - 8) / 2)

    def test_single_core_equals_volume(self):
        task = diamond_task("t", 100.0, 0)
        [res] = response_time_bounds(TaskSet([task]), 1)
        assert res.response == pytest.approx(10.0)

    def test_many_cores_approach_longest_path(self):
        task = diamond_task("t", 100.0, 0)
        [res] = response_time_bounds(TaskSet([task]), 1000)
        assert res.response == pytest.approx(8.0, abs=0.01)


class TestTwoTasks:
    def test_interference_adds_floor_term(self):
        hi = chain_task("hi", [4], period=10.0, priority=0)
        lo = chain_task("lo", [8], period=40.0, priority=1)
        results = response_time_bounds(TaskSet([hi, lo]), 1)
        assert results[0].response == 4.0
        # lo: R = 8 + floor(W_hi(R)); converges within D=40.
        assert results[1].schedulable
        assert results[1].response > 8.0

    def test_unschedulable_cascades(self):
        hi = chain_task("hi", [9], period=10.0, priority=0)
        mid = chain_task("mid", [5], period=12.0, priority=1)
        lo = chain_task("lo", [1], period=100.0, priority=2)
        results = response_time_bounds(TaskSet([hi, mid, lo]), 1)
        assert results[0].schedulable
        assert not results[1].schedulable
        assert math.isinf(results[1].response)
        # lo is skipped: it needs mid's response bound.
        assert not results[2].analyzed
        assert not results[2].schedulable


class TestLimitedPreemption:
    def test_blocking_increases_response(self):
        hi = diamond_task("hi", 200.0, 0)
        lo = diamond_task("lo", 400.0, 1)
        ts = TaskSet([hi, lo])
        [fp_hi, _] = response_time_bounds(ts, 2)

        def provider(task):
            return (5.0, 3.0) if task.name == "hi" else (0.0, 0.0)

        [lp_hi, _] = response_time_bounds(
            ts, 2, delta_provider=provider, limited_preemption=True
        )
        assert lp_hi.response >= fp_hi.response
        assert lp_hi.delta_m == 5.0
        assert lp_hi.delta_m_minus_1 == 3.0

    def test_requires_provider(self):
        task = diamond_task("t", 100.0, 0)
        with pytest.raises(AnalysisError, match="delta_provider"):
            response_time_bounds(TaskSet([task]), 2, limited_preemption=True)

    def test_preemption_count_recorded(self):
        hi = chain_task("hi", [2], period=10.0, priority=0)
        lo = chain_task("lo", [4, 4, 4], period=60.0, priority=1)
        ts = TaskSet([hi, lo])
        results = response_time_bounds(
            ts, 2, delta_provider=lambda t: (1.0, 1.0), limited_preemption=True
        )
        assert results[1].schedulable
        # lo has q=2 and several hi releases in its window -> p = 2.
        assert results[1].preemptions == 2


class TestValidation:
    def test_bad_m(self):
        task = diamond_task("t", 100.0, 0)
        with pytest.raises(AnalysisError, match="m must be >= 1"):
            response_time_bounds(TaskSet([task]), 0)

    def test_iterations_reported(self):
        hi = chain_task("hi", [4], period=10.0, priority=0)
        lo = chain_task("lo", [8], period=40.0, priority=1)
        results = response_time_bounds(TaskSet([hi, lo]), 1)
        assert results[0].iterations >= 1
        assert results[1].iterations >= 2
