"""Batched RTA kernel pinning: batch == per-item, bit for bit.

The batched analyzer (:func:`repro.core.analyzer.analyze_taskset_multi_batch`,
driven by :func:`repro.core.rta.response_time_bounds_batch` and the
cross-lane :class:`repro.core.interference.InterferenceLanes` kernel) is
an *execution strategy*, not a different analysis: every response bound,
iteration counter, preemption count and pruning decision must equal the
per-item analyzer's exactly, and its verdict-cache traffic must produce
identical hit/miss counts in both cache modes.
"""

import numpy as np
import pytest

from repro.core.analyzer import (
    AnalysisMethod,
    analyze_taskset_multi,
    analyze_taskset_multi_batch,
)
from repro.core.interference import InterferenceLanes, InterferenceMemo
from repro.core.rta import response_time_bounds, response_time_bounds_batch
from repro.engine.vcache import VerdictCache
from repro.exceptions import AnalysisError
from repro.generator.profiles import GROUP1, GROUP2
from repro.generator.taskset_gen import generate_taskset

ALL_METHODS = tuple(AnalysisMethod)


def _corpus(profile, utilization, count, seed=2016):
    return [
        generate_taskset(np.random.default_rng(seed + i), utilization, profile)
        for i in range(count)
    ]


class TestInterferenceLanes:
    def test_matches_per_lane_memo_on_every_width(self):
        # Narrow prefixes delegate to the lane memo; wide prefixes run
        # the 2-D kernel.  Both must equal a fresh memo's answer.
        tasksets = _corpus(GROUP2, 6.0, 4)
        m = 8
        memos = [InterferenceMemo(ts, m) for ts in tasksets]
        lanes = InterferenceLanes(memos)
        for lane, taskset in enumerate(tasksets):
            responses = [
                t.longest_path + (t.volume - t.longest_path) / m
                for t in taskset.tasks
            ]
            for rank, response in enumerate(responses):
                lanes.set_response(lane, rank, response)
        for lane, taskset in enumerate(tasksets):
            responses = [
                t.longest_path + (t.volume - t.longest_path) / m
                for t in taskset.tasks
            ]
            n = len(taskset.tasks)
            for count in range(n + 1):
                window = 10.0 + 3.7 * count
                reference = InterferenceMemo(taskset, m).interference(
                    count, window, responses[:count]
                )
                [value] = lanes.interference_many([(lane, count, window)])
                assert value == reference

    def test_mixed_lane_queries_in_one_kernel(self):
        tasksets = _corpus(GROUP2, 6.0, 6)
        m = 8
        memos = [InterferenceMemo(ts, m) for ts in tasksets]
        lanes = InterferenceLanes(memos)
        queries = []
        expected = []
        for lane, taskset in enumerate(tasksets):
            responses = [
                t.longest_path + (t.volume - t.longest_path) / m
                for t in taskset.tasks
            ]
            for rank, response in enumerate(responses):
                lanes.set_response(lane, rank, response)
            count = len(taskset.tasks) - (lane % 3)
            window = 25.0 + lane * 1.3
            queries.append((lane, count, window))
            expected.append(
                InterferenceMemo(taskset, m).interference(
                    count, window, responses[:count]
                )
            )
        assert lanes.interference_many(queries) == expected

    def test_rejects_mixed_core_counts_and_empty_batches(self):
        taskset = _corpus(GROUP1, 1.2, 1)[0]
        with pytest.raises(AnalysisError):
            InterferenceLanes([])
        with pytest.raises(AnalysisError):
            InterferenceLanes(
                [InterferenceMemo(taskset, 2), InterferenceMemo(taskset, 4)]
            )


class TestResponseTimeBoundsBatch:
    @pytest.mark.parametrize("m,profile,utilization", [
        (2, GROUP1, 1.2),
        (4, GROUP1, 2.5),
        (8, GROUP2, 5.0),
        (8, GROUP2, 6.5),
    ])
    def test_fp_ideal_matches_serial(self, m, profile, utilization):
        tasksets = _corpus(profile, utilization, 8)
        batch = response_time_bounds_batch(tasksets, m)
        serial = [response_time_bounds(ts, m) for ts in tasksets]
        assert batch == serial

    def test_empty_batch(self):
        assert response_time_bounds_batch([], 4) == []

    def test_argument_validation_matches_serial(self):
        tasksets = _corpus(GROUP1, 1.2, 2)
        with pytest.raises(AnalysisError):
            response_time_bounds_batch(tasksets, 0)
        with pytest.raises(AnalysisError):
            response_time_bounds_batch(tasksets, 2, limited_preemption=True)
        with pytest.raises(AnalysisError):
            response_time_bounds_batch(tasksets, 2, delta_providers=[None])


class TestAnalyzeTasksetMultiBatch:
    @pytest.mark.parametrize("dominance_pruning", [True, False])
    @pytest.mark.parametrize("methods", [
        ALL_METHODS,
        (AnalysisMethod.FP_IDEAL,),
        (AnalysisMethod.LP_MAX,),
        (AnalysisMethod.LP_ILP,),
        (AnalysisMethod.LP_ILP, AnalysisMethod.FP_IDEAL),
    ])
    def test_batch_equals_per_item(self, methods, dominance_pruning):
        # A borderline-utilisation mix: some task-sets schedulable by
        # every method, some pruned FP-unschedulable, some split between
        # LP-max and LP-ILP — every branch of the pruning flow.
        tasksets = _corpus(GROUP1, 1.1, 4, seed=7) + _corpus(
            GROUP2, 4.5, 4, seed=11
        )
        for m in (2, 4):
            batch = analyze_taskset_multi_batch(
                tasksets, m, methods, dominance_pruning=dominance_pruning
            )
            serial = [
                analyze_taskset_multi(
                    ts, m, methods, dominance_pruning=dominance_pruning
                )
                for ts in tasksets
            ]
            assert batch == serial

    def test_single_item_batch_degenerates(self):
        [taskset] = _corpus(GROUP1, 1.2, 1)
        assert analyze_taskset_multi_batch([taskset], 2) == [
            analyze_taskset_multi(taskset, 2)
        ]
        assert analyze_taskset_multi_batch([], 2) == []

    def test_wide_corpus_matches_on_all_methods(self):
        # The shape the batched kernel exists for: wide m=8 group-2
        # task-sets whose low-priority ranks cross the vector threshold.
        tasksets = _corpus(GROUP2, 6.0, 6)
        batch = analyze_taskset_multi_batch(tasksets, 8)
        serial = [analyze_taskset_multi(ts, 8) for ts in tasksets]
        assert batch == serial


class _CountingCache:
    """Duck-typed cache wrapper counting hits/misses like _CacheSession."""

    def __init__(self, cache):
        self._cache = cache
        self.hits = 0
        self.misses = 0

    def key_for(self, *args, **kwargs):
        return self._cache.key_for(*args, **kwargs)

    def get(self, key):
        verdict = self._cache.get(key)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def put(self, key, verdict):
        self._cache.put(key, verdict)


class TestBatchCacheProtocol:
    def _duplicate_heavy(self):
        # Three distinct task-sets, each appearing twice in the batch
        # (identical generator draws ⟹ identical fingerprints).
        base = _corpus(GROUP1, 1.2, 3)
        dupes = _corpus(GROUP1, 1.2, 3)
        return [base[0], dupes[0], base[1], base[2], dupes[1], dupes[2]]

    def test_readwrite_counters_match_serial_loop(self, tmp_path):
        tasksets = self._duplicate_heavy()
        with VerdictCache(tmp_path / "serial", mode="readwrite") as vc:
            serial_cache = _CountingCache(vc)
            serial = [
                analyze_taskset_multi(ts, 2, cache=serial_cache)
                for ts in tasksets
            ]
        with VerdictCache(tmp_path / "batch", mode="readwrite") as vc:
            batch_cache = _CountingCache(vc)
            batch = analyze_taskset_multi_batch(tasksets, 2, cache=batch_cache)
        assert batch == serial
        assert (batch_cache.hits, batch_cache.misses) == (
            serial_cache.hits, serial_cache.misses,
        )
        assert (batch_cache.hits, batch_cache.misses) == (3, 3)

    def test_read_mode_counters_match_serial_loop(self, tmp_path):
        tasksets = self._duplicate_heavy()
        (tmp_path / "empty").mkdir()
        reader = VerdictCache(tmp_path / "empty", mode="read")
        serial_cache = _CountingCache(reader)
        serial = [
            analyze_taskset_multi(ts, 2, cache=serial_cache)
            for ts in tasksets
        ]
        batch_cache = _CountingCache(VerdictCache(tmp_path / "empty", mode="read"))
        batch = analyze_taskset_multi_batch(tasksets, 2, cache=batch_cache)
        assert batch == serial
        assert (batch_cache.hits, batch_cache.misses) == (
            serial_cache.hits, serial_cache.misses,
        )
        assert (batch_cache.hits, batch_cache.misses) == (0, 6)

    def test_warm_cache_serves_whole_batch(self, tmp_path):
        tasksets = self._duplicate_heavy()
        with VerdictCache(tmp_path / "c", mode="readwrite") as writer:
            cold = analyze_taskset_multi_batch(tasksets, 2, cache=writer)
        reader = _CountingCache(VerdictCache(tmp_path / "c", mode="read"))
        warm = analyze_taskset_multi_batch(tasksets, 2, cache=reader)
        assert warm == cold
        assert (reader.hits, reader.misses) == (6, 0)
