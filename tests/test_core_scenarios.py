"""Unit tests for :mod:`repro.core.scenarios` (e_m and ρ_k[s_l])."""

import pytest

from repro.core.scenarios import (
    ExecutionScenario,
    execution_scenarios,
    rho_assignment,
    rho_bruteforce,
    rho_ilp,
)
from repro.core.workload import mu_array
from repro.exceptions import AnalysisError
from repro.experiments.figure1 import TABLE2_EXPECTED, TABLE3_EXPECTED


@pytest.fixture
def fig1_mu(fig1_tasks):
    return {t.name: mu_array(t, 4) for t in fig1_tasks}


class TestScenario:
    def test_parts_validated_positive(self):
        with pytest.raises(AnalysisError, match="positive"):
            ExecutionScenario((2, 0))

    def test_parts_validated_sorted(self):
        with pytest.raises(AnalysisError, match="non-increasing"):
            ExecutionScenario((1, 2))

    def test_m_and_cardinality(self):
        s = ExecutionScenario((2, 1, 1))
        assert s.m == 4
        assert s.cardinality == 3

    def test_describe_matches_paper_style(self):
        assert ExecutionScenario((1, 1, 1, 1)).describe() == "4 tasks in 1 core"
        assert ExecutionScenario((4,)).describe() == "1 task in 4 cores"
        assert (
            ExecutionScenario((2, 1, 1)).describe()
            == "1 task in 2 cores, 2 tasks in 1 core"
        )


class TestScenarioEnumeration:
    def test_paper_table2(self):
        scenarios = execution_scenarios(4)
        assert [(s.parts, s.cardinality) for s in scenarios] == [
            (parts, card) for parts, card in sorted(
                TABLE2_EXPECTED, key=lambda pc: pc[0], reverse=True
            )
        ]

    def test_e0_is_empty_scenario(self):
        scenarios = execution_scenarios(0)
        assert len(scenarios) == 1
        assert scenarios[0].parts == ()

    def test_count_matches_partition_function(self):
        from repro.combinatorics import partition_count

        for m in range(0, 10):
            assert len(execution_scenarios(m)) == partition_count(m)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            execution_scenarios(-1)


class TestPaperTable3:
    def test_assignment_reproduces_table3(self, fig1_mu):
        for scenario in execution_scenarios(4):
            assert rho_assignment(fig1_mu, scenario) == TABLE3_EXPECTED[scenario.parts]

    def test_ilp_reproduces_table3(self, fig1_mu):
        for scenario in execution_scenarios(4):
            assert rho_ilp(fig1_mu, scenario, 4) == TABLE3_EXPECTED[scenario.parts]

    def test_bruteforce_reproduces_table3(self, fig1_mu):
        for scenario in execution_scenarios(4):
            assert rho_bruteforce(fig1_mu, scenario) == TABLE3_EXPECTED[scenario.parts]

    def test_s3_composition(self, fig1_mu):
        """ρ[s3] = μ4[2] + μ2[1] + μ3[1] = 9 + 4 + 6 = 19 (paper text)."""
        assert fig1_mu["tau4"][1] + fig1_mu["tau2"][0] + fig1_mu["tau3"][0] == 19.0


class TestAssignmentSolver:
    def test_empty_inputs(self):
        assert rho_assignment({}, ExecutionScenario((2, 1))) == 0.0
        assert rho_assignment({"t": [5.0, 3.0]}, ExecutionScenario(())) == 0.0

    def test_fewer_tasks_than_parts_keeps_partial(self):
        """Two sequential tasks on a 4-core scenario still block 2 cores.

        The paper's ILP is infeasible here; the assignment solver keeps
        the sound partial bound (see DESIGN.md).
        """
        mu = {"a": [10.0, 0.0, 0.0, 0.0], "b": [7.0, 0.0, 0.0, 0.0]}
        assert rho_assignment(mu, ExecutionScenario((1, 1, 1, 1))) == 17.0
        assert rho_ilp(mu, ExecutionScenario((1, 1, 1, 1)), 4) is None

    def test_task_used_at_most_once(self):
        mu = {"a": [10.0, 20.0]}
        # Only one task: scenario (1,1) can use it once.
        assert rho_assignment(mu, ExecutionScenario((1, 1))) == 10.0

    def test_short_mu_array_rejected(self):
        with pytest.raises(AnalysisError, match="mu array"):
            rho_assignment({"a": [1.0]}, ExecutionScenario((2,)))


class TestIlpSolver:
    def test_scenario_core_mismatch_rejected(self, fig1_mu):
        with pytest.raises(AnalysisError, match="covers"):
            rho_ilp(fig1_mu, ExecutionScenario((2, 1)), 4)

    def test_empty_tasks_infeasible(self):
        assert rho_ilp({}, ExecutionScenario((2,)), 2) is None

    def test_short_mu_array_rejected(self):
        with pytest.raises(AnalysisError, match="mu array"):
            rho_ilp({"a": [1.0]}, ExecutionScenario((2,)), 2)

    def test_agreement_with_assignment_when_feasible(self, fig1_mu, rng):
        """On random μ data, the paper ILP (when feasible) equals the
        assignment optimum."""
        for _ in range(25):
            n_tasks = int(rng.integers(1, 6))
            m = int(rng.integers(1, 5))
            mu = {
                f"t{i}": sorted(
                    (float(rng.integers(0, 50)) for _ in range(m)), reverse=False
                )
                for i in range(n_tasks)
            }
            # Make arrays plausibly monotone then zero-padded.
            for arr in mu.values():
                cut = int(rng.integers(1, m + 1))
                for j in range(cut, m):
                    arr[j] = 0.0
            for scenario in execution_scenarios(m):
                expected = rho_assignment(mu, scenario)
                via_ilp = rho_ilp(mu, scenario, m)
                brute = rho_bruteforce(mu, scenario)
                assert expected == pytest.approx(brute)
                if via_ilp is not None:
                    assert via_ilp == pytest.approx(expected)
