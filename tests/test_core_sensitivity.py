"""Unit tests for :mod:`repro.core.sensitivity`."""

import numpy as np
import pytest

from repro.core import AnalysisMethod, analyze_taskset
from repro.core.sensitivity import blocking_slack, breakdown_utilization
from repro.exceptions import AnalysisError
from repro.generator import GROUP1, generate_taskset
from repro.model import DAGTask, DagBuilder, TaskSet, scale_periods


@pytest.fixture
def taskset(diamond, chain):
    return TaskSet([
        DAGTask("a", diamond, period=60.0, priority=0),
        DAGTask("b", chain, period=90.0, priority=1),
    ])


class TestBreakdownUtilization:
    def test_breakdown_is_at_least_current_when_schedulable(self, taskset):
        assert analyze_taskset(taskset, 2, AnalysisMethod.LP_ILP).schedulable
        breakdown = breakdown_utilization(taskset, 2)
        assert breakdown >= taskset.total_utilization

    def test_scaled_set_at_breakdown_is_schedulable(self, taskset):
        breakdown = breakdown_utilization(taskset, 2)
        alpha = breakdown / taskset.total_utilization
        # Just below the breakdown scale: must still be schedulable.
        scaled = scale_periods(taskset, 1.0 / (alpha * 0.99))
        assert analyze_taskset(scaled, 2, AnalysisMethod.LP_ILP).schedulable

    def test_method_ordering(self, taskset):
        """Breakdown utilisations follow the analyses' pessimism order."""
        fp = breakdown_utilization(taskset, 2, AnalysisMethod.FP_IDEAL)
        ilp = breakdown_utilization(taskset, 2, AnalysisMethod.LP_ILP)
        mx = breakdown_utilization(taskset, 2, AnalysisMethod.LP_MAX)
        assert mx <= ilp + 1e-6
        assert ilp <= fp + 1e-6

    def test_more_cores_higher_breakdown(self, taskset):
        b2 = breakdown_utilization(taskset, 2)
        b4 = breakdown_utilization(taskset, 4)
        assert b4 >= b2 - 1e-6

    def test_hopeless_set_returns_zero(self):
        # A task with zero slack whatever the scale: L == D exactly at
        # every alpha... emulate with blocking from a huge lp NPR.
        hi = DAGTask("hi", DagBuilder().node("h", 10).build(),
                     period=10.0, priority=0)
        lo = DAGTask("lo", DagBuilder().node("l", 500).build(),
                     period=10000.0, priority=1)
        ts = TaskSet([hi, lo])
        # hi: D scales with alpha but blocking floor(500/1) dwarfs it at
        # any alpha within range; LP-ILP can never accept.
        assert breakdown_utilization(ts, 1, max_scale=4.0) == 0.0

    def test_validation(self, taskset):
        with pytest.raises(AnalysisError):
            breakdown_utilization(taskset, 0)
        with pytest.raises(AnalysisError):
            breakdown_utilization(taskset, 2, max_scale=0.0)

    def test_on_generated_sets(self):
        rng = np.random.default_rng(4)
        ts = generate_taskset(rng, 1.0, GROUP1)
        breakdown = breakdown_utilization(ts, 4)
        assert breakdown > 0.0


class TestBlockingSlack:
    def test_positive_for_schedulable(self, taskset):
        slack = blocking_slack(taskset, 2)
        assert set(slack) == {"a", "b"}
        assert all(v > 0 for v in slack.values())

    def test_slack_scales_with_m(self, taskset):
        s2 = blocking_slack(taskset, 2)
        s4 = blocking_slack(taskset, 4)
        # More cores: smaller base response AND larger multiplier.
        assert s4["a"] >= s2["a"]

    def test_zero_for_failed_task(self):
        hi = DAGTask("hi", DagBuilder().node("h", 9).build(),
                     period=10.0, priority=0)
        lo = DAGTask("lo", DagBuilder().node("l", 5).build(),
                     period=12.0, priority=1)
        slack = blocking_slack(TaskSet([hi, lo]), 1)
        assert slack["lo"] == 0.0
        assert slack["hi"] > 0.0

    def test_validation(self, taskset):
        with pytest.raises(AnalysisError):
            blocking_slack(taskset, 0)
