"""Unit tests for :mod:`repro.core.sequential` ([15]'s baseline)."""

import numpy as np
import pytest

from repro.core import AnalysisMethod, analyze_taskset
from repro.core.blocking import lp_ilp_deltas, lp_max_deltas
from repro.core.sequential import (
    analyze_sequential_taskset,
    is_sequential,
    sequential_lp_deltas,
)
from repro.exceptions import AnalysisError
from repro.generator.dag_gen import sequential_dag
from repro.generator.profiles import DagProfile
from repro.generator.taskset_gen import assign_priorities_dm
from repro.model import DAGTask, DagBuilder, TaskSet


def chain_task(name, wcets, period, priority=None):
    builder = DagBuilder()
    names = [f"{name}{i}" for i in range(len(wcets))]
    for n, w in zip(names, wcets):
        builder.node(n, w)
    builder.chain(*names)
    return DAGTask(name, builder.build(), period=period, priority=priority)


@pytest.fixture
def chains():
    return [
        chain_task("a", [9, 3, 5], period=300.0, priority=1),
        chain_task("b", [2, 7], period=300.0, priority=2),
        chain_task("c", [4], period=300.0, priority=3),
    ]


class TestIsSequential:
    def test_chain(self, chain):
        assert is_sequential(DAGTask("t", chain, period=100.0))

    def test_diamond(self, diamond):
        assert not is_sequential(DAGTask("t", diamond, period=100.0))


class TestDeltas:
    def test_one_value_per_task(self, chains):
        # longest NPRs: a->9, b->7, c->4; m=2: 9+7; m-1: 9.
        assert sequential_lp_deltas(chains, 2) == (16.0, 9.0)

    def test_m_exceeds_task_count(self, chains):
        # Only 3 candidate NPRs exist for m=4.
        assert sequential_lp_deltas(chains, 4) == (20.0, 20.0)

    def test_empty(self):
        assert sequential_lp_deltas([], 4) == (0.0, 0.0)

    def test_rejects_parallel_tasks(self, diamond):
        task = DAGTask("d", diamond, period=100.0, priority=0)
        with pytest.raises(AnalysisError, match="parallel tasks"):
            sequential_lp_deltas([task], 2)

    def test_allow_dag_override(self, diamond):
        task = DAGTask("d", diamond, period=100.0, priority=0)
        delta_m, _ = sequential_lp_deltas([task], 2, allow_dag=True)
        assert delta_m == 4.0  # the single largest NPR only (unsound)

    def test_bad_m(self, chains):
        with pytest.raises(AnalysisError):
            sequential_lp_deltas(chains, 0)


class TestEquivalenceWithDagAnalysis:
    """On chain task-sets [15] and the paper's LP-ILP must coincide."""

    def test_deltas_match_lp_ilp(self, chains):
        for m in (1, 2, 3, 4, 6):
            assert sequential_lp_deltas(chains, m) == lp_ilp_deltas(chains, m)

    def test_lp_max_is_more_pessimistic_on_chains(self, chains):
        # LP-max pools several NPRs of the same chain: 9+7+5+4 = 25.
        assert lp_max_deltas(chains, 4)[0] == 25.0
        assert sequential_lp_deltas(chains, 4)[0] == 20.0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_chain_tasksets(self, seed):
        rng = np.random.default_rng(seed)
        profile = DagProfile(seq_min_nodes=1, seq_max_nodes=8, wcet_max=20)
        tasks = []
        for i in range(4):
            dag = sequential_dag(rng, profile, name_prefix=f"t{i}n")
            tasks.append(DAGTask(f"t{i}", dag, period=float(dag.volume * 4)))
        taskset = assign_priorities_dm(tasks)
        seq = analyze_sequential_taskset(taskset, 2)
        dag_analysis = analyze_taskset(taskset, 2, AnalysisMethod.LP_ILP)
        assert seq.schedulable == dag_analysis.schedulable
        for t_seq, t_dag in zip(seq.tasks, dag_analysis.tasks):
            assert t_seq.response == pytest.approx(t_dag.response)
            assert t_seq.delta_m == pytest.approx(t_dag.delta_m)


class TestFullAnalysis:
    def test_method_label(self, chains):
        taskset = TaskSet(chains)
        result = analyze_sequential_taskset(taskset, 2)
        assert result.method == "LP-sequential"
        assert len(result.tasks) == 3

    def test_lowest_priority_has_no_blocking(self, chains):
        taskset = TaskSet(chains)
        result = analyze_sequential_taskset(taskset, 2)
        assert result.task("c").delta_m == 0.0
