"""Unit tests for :mod:`repro.core.workload` (μ_i[c], paper Table I)."""

import pytest

from repro.core.workload import mu_array, mu_bruteforce, mu_value
from repro.exceptions import AnalysisError
from repro.experiments.figure1 import TABLE1_EXPECTED
from repro.model import DagBuilder

ALL_METHODS = ("search", "ilp", "ilp-paper")


class TestPaperTable1:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_table1_all_methods(self, fig1_tasks, method):
        """Every μ_i[c] of the paper's Table I, with every solver."""
        for task in fig1_tasks:
            assert mu_array(task, 4, method=method) == TABLE1_EXPECTED[task.name]

    def test_mu4_2_attained_by_v43_v44(self, fig1_tau4):
        # The paper explains mu4[2]=9 comes from v4,3 + v4,4 in parallel.
        assert mu_value(fig1_tau4, 2) == 9.0
        assert fig1_tau4.wcet("v4,3") + fig1_tau4.wcet("v4,4") == 9.0


class TestBasicShapes:
    def test_chain_only_mu1(self, chain):
        assert mu_array(chain, 3) == [7.0, 0.0, 0.0]

    def test_diamond(self, diamond):
        assert mu_array(diamond, 4) == [4.0, 5.0, 0.0, 0.0]

    def test_single_node(self, single_node):
        assert mu_array(single_node, 2) == [9.0, 0.0]

    def test_independent_nodes(self):
        dag = DagBuilder().nodes({"a": 5, "b": 3, "c": 1}).build()
        assert mu_array(dag, 4) == [5.0, 8.0, 9.0, 0.0]

    def test_c_larger_than_graph_is_zero(self, diamond):
        assert mu_value(diamond, 10) == 0.0


class TestValidation:
    def test_bad_m(self, diamond):
        with pytest.raises(AnalysisError, match="m must be >= 1"):
            mu_array(diamond, 0)

    def test_bad_c(self, diamond):
        with pytest.raises(AnalysisError, match="c must be >= 1"):
            mu_value(diamond, 0)

    def test_unknown_method(self, diamond):
        with pytest.raises(AnalysisError, match="unknown mu method"):
            mu_array(diamond, 2, method="cplex")  # type: ignore[arg-type]

    def test_accepts_dag_or_task(self, fig1_tasks):
        task = fig1_tasks[0]
        assert mu_array(task, 4) == mu_array(task.graph, 4)


class TestSolverAgreement:
    def test_methods_agree_on_fig1(self, fig1_tasks):
        for task in fig1_tasks:
            reference = mu_array(task, 4, method="search")
            for method in ("ilp", "ilp-paper"):
                assert mu_array(task, 4, method=method) == reference

    def test_search_matches_bruteforce(self, fig1_tasks):
        for task in fig1_tasks:
            for c in range(1, 5):
                assert mu_value(task.graph, c) == mu_bruteforce(task.graph, c)


class TestMuSemantics:
    def test_mu_selects_antichain_not_heaviest_nodes(self):
        """The heaviest pair is ordered, so μ[2] must take a lighter one."""
        dag = (
            DagBuilder()
            .nodes({"big1": 100, "big2": 90, "small": 10})
            .chain("big1", "big2")
            .build()
        )
        # big1/big2 are ordered; parallel pairs: (big1, small), (big2, small)
        assert mu_value(dag, 2) == 110.0

    def test_mu1_is_max_wcet(self, fig1_tau3):
        assert mu_value(fig1_tau3, 1) == 6.0
