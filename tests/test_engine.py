"""Unit tests for :mod:`repro.engine` — executors, sweep, checkpoints,
shard artifacts and streams.  (Cross-executor bit-identity lives in
``tests/test_engine_conformance.py``.)"""

import json

import pytest

from repro.core.analyzer import AnalysisMethod
from repro.engine.checkpoint import (
    FORMAT_VERSION,
    ChunkRecord,
    SweepCheckpoint,
    coalesce_records,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.executors import (
    MultiprocessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    map_ordered,
)
from repro.engine.shard import (
    ShardArtifact,
    ShardSpec,
    load_shard,
    merge_shards,
    parse_items,
    parse_shard,
    save_shard,
)
from repro.engine.sweep import SweepEngine, SweepSpec, _contiguous_runs
from repro.exceptions import AnalysisError, CheckpointError, ShardError
from repro.generator.profiles import GROUP1


def _spec(**overrides):
    defaults = dict(
        m=2,
        utilizations=(0.5, 1.5),
        n_tasksets=6,
        profile=GROUP1,
        seed=42,
        label="engine-test",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, MultiprocessExecutor)
        assert pool.jobs == 3
        with pytest.raises(AnalysisError):
            make_executor(0)
        with pytest.raises(AnalysisError):
            MultiprocessExecutor(-1)

    def test_serial_order(self):
        executor = SerialExecutor()
        assert list(executor.map_unordered(abs, [-3, 1, -2])) == [3, 1, 2]

    def test_pool_empty_payloads(self):
        assert list(MultiprocessExecutor(2).map_unordered(abs, [])) == []

    def test_map_ordered_restores_payload_order(self):
        expected = [abs(x) for x in range(-8, 8)]
        assert map_ordered(SerialExecutor(), abs, range(-8, 8)) == expected
        assert map_ordered(MultiprocessExecutor(3), abs, range(-8, 8)) == expected
        assert map_ordered(ThreadExecutor(3), abs, range(-8, 8)) == expected

    def test_thread_executor(self):
        assert sorted(ThreadExecutor(4).map_unordered(abs, [-3, 1, -2])) == [1, 2, 3]
        assert list(ThreadExecutor(2).map_unordered(abs, [])) == []
        with pytest.raises(AnalysisError):
            ThreadExecutor(0)

    def test_make_executor_kinds(self):
        assert isinstance(make_executor(4, kind="thread"), ThreadExecutor)
        assert isinstance(make_executor(4, kind="process"), MultiprocessExecutor)
        assert isinstance(make_executor(1, kind="thread"), SerialExecutor)
        with pytest.raises(AnalysisError):
            make_executor(4, kind="fibers")


class TestExecutorLifecycle:
    """Every executor is a context manager with a uniform close()."""

    @pytest.mark.parametrize(
        "factory",
        [SerialExecutor, lambda: MultiprocessExecutor(2), lambda: ThreadExecutor(2)],
        ids=["serial", "process", "thread"],
    )
    def test_context_manager_closes(self, factory):
        with factory() as executor:
            assert sorted(executor.map_unordered(abs, [-2, 1])) == [1, 2]
        with pytest.raises(AnalysisError):
            list(executor.map_unordered(abs, [-1]))

    @pytest.mark.parametrize(
        "factory",
        [SerialExecutor, lambda: MultiprocessExecutor(2), lambda: ThreadExecutor(2)],
        ids=["serial", "process", "thread"],
    )
    def test_close_is_idempotent(self, factory):
        executor = factory()
        executor.close()
        executor.close()

    def test_pool_persists_across_map_calls(self):
        # The adaptive engine issues many small waves; the pool must be
        # created once and reused, not respawned per call.
        with MultiprocessExecutor(2) as executor:
            assert list(executor.map_unordered(abs, [-1])) == [1]
            pool_before = executor._pool
            assert pool_before is not None
            assert list(executor.map_unordered(abs, [-2])) == [2]
            assert executor._pool is pool_before

    def test_closed_executor_rejects_reentry(self):
        executor = SerialExecutor()
        executor.close()
        with pytest.raises(AnalysisError):
            executor.__enter__()

    def test_drained_pool_closes_gracefully(self):
        # When every wave was fully drained the workers sit idle in
        # SimpleQueue.get holding the task-queue rlock; terminate()
        # would SIGTERM the holder and wedge its siblings (and then
        # pool.join) forever on single-CPU hosts.  Fully-drained
        # executors must therefore take the sentinel-based close()
        # path, and only an abandoned iterator may flip teardown to
        # terminate().
        executor = MultiprocessExecutor(2)
        assert sorted(executor.map_unordered(abs, [-3, 4])) == [3, 4]
        assert executor._clean
        executor.close()

    def test_abandoned_iterator_marks_pool_for_termination(self):
        executor = MultiprocessExecutor(2)
        iterator = executor.map_unordered(abs, [-1, -2, -3])
        next(iterator)
        iterator.close()
        assert not executor._clean
        # A later fully-drained wave must not launder the abandonment:
        # half-finished tasks may still be queued, so close() has to
        # keep terminating.
        assert sorted(executor.map_unordered(abs, [-5])) == [5]
        assert not executor._clean
        executor.close()


class TestSweepSpec:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            _spec(n_tasksets=0)
        with pytest.raises(AnalysisError):
            _spec(methods=())

    def test_rng_independent_of_order(self):
        spec = _spec()
        a = spec.taskset_rng(1, 3).integers(0, 1 << 30, 4)
        b = spec.taskset_rng(0, 0).integers(0, 1 << 30, 4)
        c = spec.taskset_rng(1, 3).integers(0, 1 << 30, 4)
        assert list(a) == list(c)
        assert list(a) != list(b)

    def test_fingerprint_sensitivity(self):
        base = _spec()
        assert base.fingerprint() == _spec().fingerprint()
        assert base.fingerprint() != _spec(seed=43).fingerprint()
        assert base.fingerprint() != _spec(n_tasksets=7).fingerprint()
        assert (
            base.fingerprint()
            != _spec(methods=(AnalysisMethod.FP_IDEAL,)).fingerprint()
        )


class TestChunking:
    def test_contiguous_runs(self):
        assert _contiguous_runs([]) == []
        assert _contiguous_runs([0, 1, 2, 5, 6, 9]) == [(0, 3), (5, 7), (9, 10)]

    def test_chunks_respect_size_and_gaps(self):
        engine = SweepEngine(chunk_size=2)
        assert engine._chunks([0, 1, 2, 5, 6, 9]) == [
            [(0, 2)], [(2, 3)], [(5, 7)], [(9, 10)],
        ]

    def test_strided_items_batch_into_shared_payloads(self):
        # A shard's item set is strided: single-item runs must share an
        # executor payload up to the chunk size, not go one-per-task.
        engine = SweepEngine(chunk_size=3)
        assert engine._chunks(range(0, 12, 2)) == [
            [(0, 1), (2, 3), (4, 5)],
            [(6, 7), (8, 9), (10, 11)],
        ]

    def test_bad_chunk_size(self):
        with pytest.raises(AnalysisError):
            SweepEngine(chunk_size=0)


class TestEngineRun:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return SweepEngine().run(_spec())

    def test_result_shape(self, serial_result):
        assert serial_result.m == 2
        assert serial_result.label == "engine-test"
        assert [p.utilization for p in serial_result.points] == [0.5, 1.5]
        assert all(p.n_tasksets == 6 for p in serial_result.points)

    def test_parallel_bit_identical(self, serial_result):
        parallel = SweepEngine(executor=MultiprocessExecutor(3)).run(_spec())
        assert [p.schedulable for p in parallel.points] == [
            p.schedulable for p in serial_result.points
        ]

    def test_chunking_does_not_change_counts(self, serial_result):
        chunked = SweepEngine(chunk_size=5).run(_spec())
        assert [p.schedulable for p in chunked.points] == [
            p.schedulable for p in serial_result.points
        ]

    def test_progress_events(self):
        events = []
        SweepEngine(progress=events.append).run(_spec(n_tasksets=3))
        assert [(e.utilization, e.done_in_point, e.n_tasksets) for e in events] == [
            (0.5, 1, 3), (0.5, 2, 3), (0.5, 3, 3),
            (1.5, 1, 3), (1.5, 2, 3), (1.5, 3, 3),
        ]
        assert [e.done_items for e in events] == list(range(1, 7))
        assert all(e.total_items == 6 for e in events)


class TestCheckpoint:
    def test_coalesce(self):
        records = [
            ChunkRecord(3, 5, {0: {"X": 1}}),
            ChunkRecord(0, 3, {0: {"X": 2}}),
            ChunkRecord(7, 9, {1: {"X": 1}}),
        ]
        merged = coalesce_records(records)
        assert [(r.start, r.stop) for r in merged] == [(0, 5), (7, 9)]
        assert merged[0].counts == {0: {"X": 3}}

    def test_coalesce_rejects_overlap(self):
        with pytest.raises(CheckpointError):
            coalesce_records([ChunkRecord(0, 3, {}), ChunkRecord(2, 4, {})])

    def test_coalesce_rejects_nested_overlap(self):
        with pytest.raises(CheckpointError):
            coalesce_records(
                [ChunkRecord(0, 10, {0: {"X": 1}}), ChunkRecord(4, 6, {0: {"X": 1}})]
            )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cp.json"
        assert load_checkpoint(path) is None
        checkpoint = SweepCheckpoint("abc", [ChunkRecord(0, 2, {0: {"X": 1}})])
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == "abc"
        assert loaded.records == [ChunkRecord(0, 2, {0: {"X": 1}})]
        assert loaded.covered_items() == {0, 1}

    def test_corrupt_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        path.write_text(json.dumps({"version": 99, "fingerprint": "x", "records": []}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_json_raises_checkpoint_error(self, tmp_path):
        # A write torn mid-file (pre-atomic-save legacy, disk-full, ...)
        # must surface as CheckpointError, not json.JSONDecodeError.
        path = tmp_path / "cp.json"
        save_checkpoint(path, SweepCheckpoint("abc", [ChunkRecord(0, 2, {0: {"X": 1}})]))
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_fields_raise_checkpoint_error(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text(json.dumps({"version": 1, "fingerprint": "x"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "fingerprint": "x",
                    "records": [{"start": 0, "counts": {}}],
                }
            )
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_clean_stale_tmps_file_and_dir_modes(self, tmp_path):
        from repro.engine import clean_stale_tmps

        target = tmp_path / "cp.json"
        target.write_text("{}")
        orphan_a = tmp_path / "cp.json.1234.tmp"
        orphan_b = tmp_path / "cp.json.5678.tmp"
        unrelated = tmp_path / "other.json.1.tmp"
        for path in (orphan_a, orphan_b, unrelated):
            path.write_text("half-written")
        removed = clean_stale_tmps(target)
        assert sorted(removed) == sorted([orphan_a, orphan_b])
        assert unrelated.exists()  # file mode cleans only its own temps
        assert target.exists()
        assert clean_stale_tmps(tmp_path) == [unrelated]  # dir mode: all

    def test_clean_stale_tmps_order_is_host_independent(
        self, tmp_path, monkeypatch
    ):
        # DET001 regression: the sweep (and its returned list) must not
        # depend on the order the filesystem yields directory entries —
        # simulate a worst-case host whose globs come back reversed.
        import pathlib

        from repro.engine import clean_stale_tmps

        orphans = [
            tmp_path / f"cp.json.{pid}.tmp" for pid in (31, 7, 204, 99)
        ]
        for path in orphans:
            path.write_text("half-written")

        real_glob = pathlib.Path.glob

        def reversed_glob(self, pattern):
            return iter(sorted(real_glob(self, pattern), reverse=True))

        monkeypatch.setattr(pathlib.Path, "glob", reversed_glob)
        assert clean_stale_tmps(tmp_path) == sorted(orphans)
        for path in orphans:
            path.write_text("half-written")
        assert clean_stale_tmps(tmp_path / "cp.json") == sorted(orphans)

    def test_engine_resume_cleans_orphaned_tmps(self, tmp_path):
        checkpoint = tmp_path / "cp.json"
        orphan = tmp_path / "cp.json.424242.tmp"
        orphan.write_text("killed mid-write")
        SweepEngine(checkpoint_path=checkpoint).run(_spec(n_tasksets=2))
        assert not orphan.exists()
        assert checkpoint.exists()

    def test_save_is_atomic(self, tmp_path):
        # The tmp file must never linger, and an existing checkpoint
        # survives a failed overwrite attempt (rename is all-or-nothing).
        path = tmp_path / "cp.json"
        save_checkpoint(path, SweepCheckpoint("abc", []))
        leftovers = [p for p in sorted(tmp_path.iterdir()) if p.name != "cp.json"]
        assert leftovers == []
        assert load_checkpoint(path).fingerprint == "abc"

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        from repro.engine.sweep import _run_chunk

        spec = _spec()
        path = tmp_path / "sweep.json"
        full = SweepEngine().run(spec)

        # Simulate an interrupted run: a checkpoint covering only the
        # first 5 of the 12 work items.
        partial = _run_chunk((spec, 0, 5))
        save_checkpoint(path, SweepCheckpoint(spec.fingerprint(), [partial]))

        resumed = SweepEngine(checkpoint_path=path).run(spec)
        assert [p.schedulable for p in resumed.points] == [
            p.schedulable for p in full.points
        ]
        # A re-run over a complete checkpoint is a no-op with the same result.
        cached = SweepEngine(checkpoint_path=path).run(spec)
        assert [p.schedulable for p in cached.points] == [
            p.schedulable for p in full.points
        ]

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepEngine(checkpoint_path=path).run(_spec())
        with pytest.raises(AnalysisError):
            SweepEngine(checkpoint_path=path).run(_spec(seed=43))

    def test_oversized_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        spec = _spec()
        SweepEngine(checkpoint_path=path).run(spec)
        smaller = _spec(n_tasksets=2)
        save_checkpoint(
            path,
            SweepCheckpoint(smaller.fingerprint(), load_checkpoint(path).records),
        )
        with pytest.raises(AnalysisError):
            SweepEngine(checkpoint_path=path).run(smaller)

    def test_resume_after_partial_chunk(self, tmp_path):
        # An interrupted run checkpointed mid-chunk-schedule: covered
        # items end in the middle of what a chunk_size=4 run would
        # schedule as one chunk.  Resuming with a *different* chunk size
        # must slice the remainder afresh and still match bit-for-bit.
        from repro.engine.sweep import _run_chunk

        spec = _spec()  # 2 points x 6 task-sets = 12 items
        full = SweepEngine().run(spec)
        path = tmp_path / "sweep.json"
        partial = [_run_chunk((spec, 0, 3)), _run_chunk((spec, 7, 9))]
        save_checkpoint(path, SweepCheckpoint(spec.fingerprint(), partial))

        resumed = SweepEngine(checkpoint_path=path, chunk_size=4).run(spec)
        assert [p.schedulable for p in resumed.points] == [
            p.schedulable for p in full.points
        ]
        # The final checkpoint coalesces to exactly the full item space.
        records = load_checkpoint(path).records
        assert [(r.start, r.stop) for r in records] == [(0, spec.total_items)]

    def test_version_mismatch_rejected_by_engine(self, tmp_path):
        path = tmp_path / "sweep.json"
        spec = _spec()
        SweepEngine(checkpoint_path=path).run(spec)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            SweepEngine(checkpoint_path=path).run(spec)


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ShardError):
            ShardSpec(0, 0)
        with pytest.raises(ShardError):
            ShardSpec(-1, 4)
        with pytest.raises(ShardError):
            ShardSpec(4, 4)

    def test_partition_is_disjoint_and_covering(self):
        for count in (1, 2, 3, 5):
            shards = [ShardSpec(i, count) for i in range(count)]
            items = [set(s.items(17)) for s in shards]
            union = set().union(*items)
            assert union == set(range(17))
            assert sum(len(s) for s in items) == 17  # pairwise disjoint

    def test_parse_shard(self):
        assert parse_shard("1/1") == ShardSpec(0, 1)
        assert parse_shard("2/4") == ShardSpec(1, 4)
        for bad in ("0/4", "5/4", "4", "a/b", "1/0", "-1/4", "1//2", ""):
            with pytest.raises(ShardError):
                parse_shard(bad)

    def test_labels_are_one_based(self):
        assert ShardSpec(1, 4).label == "2/4"


class TestShardMerge:
    def _artifacts(self, spec, count, tmp_path):
        paths = []
        for index in range(count):
            path = tmp_path / f"s{index}.json"
            SweepEngine().run(spec, shard=ShardSpec(index, count), shard_out=path)
            paths.append(path)
        return paths

    def test_roundtrip(self, tmp_path):
        spec = _spec()
        path = self._artifacts(spec, 2, tmp_path)[0]
        artifact = load_shard(path)
        assert artifact.kind == "sweep"
        assert artifact.fingerprint == spec.fingerprint()
        assert artifact.shard == ShardSpec(0, 2)
        assert artifact.total_items == spec.total_items
        assert artifact.covered_items() == set(range(0, spec.total_items, 2))

    def test_merge_detects_gap(self, tmp_path):
        spec = _spec()
        paths = self._artifacts(spec, 3, tmp_path)
        with pytest.raises(ShardError, match="gap"):
            merge_shards([paths[0], paths[2]])

    def test_merge_detects_duplicate_shard(self, tmp_path):
        spec = _spec()
        paths = self._artifacts(spec, 2, tmp_path)
        with pytest.raises(ShardError, match="duplicate|overlap"):
            merge_shards([paths[0], paths[0], paths[1]])

    def test_merge_rejects_mixed_sweeps(self, tmp_path):
        a = self._artifacts(_spec(), 2, tmp_path)
        other = tmp_path / "other"
        other.mkdir()
        b = self._artifacts(_spec(seed=99), 2, other)
        with pytest.raises(ShardError, match="fingerprint"):
            merge_shards([a[0], b[1]])

    def test_merge_rejects_inconsistent_counts(self, tmp_path):
        spec = _spec()
        half = self._artifacts(spec, 2, tmp_path)[0]
        third = tmp_path / "third.json"
        SweepEngine().run(spec, shard=ShardSpec(1, 3), shard_out=third)
        with pytest.raises(ShardError, match="shard count"):
            merge_shards([half, third])

    def test_load_rejects_version_and_kind_skew(self, tmp_path):
        spec = _spec()
        path = self._artifacts(spec, 1, tmp_path)[0]
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="version"):
            load_shard(path)
        payload["version"] = FORMAT_VERSION
        payload["kind"] = "mystery"
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="kind"):
            load_shard(path)
        with pytest.raises(ShardError):
            load_shard(tmp_path / "nope.json")

    def test_merge_rejects_items_outside_slice(self, tmp_path):
        spec = _spec()
        paths = self._artifacts(spec, 2, tmp_path)
        corrupt = load_shard(paths[0])
        corrupt.records.append(ChunkRecord(1, 2, {0: {"X": 1}}))  # shard 2's item
        with pytest.raises(ShardError, match="outside its slice"):
            merge_shards([corrupt, load_shard(paths[1])])

    def test_merge_empty_input(self):
        with pytest.raises(ShardError, match="no shard"):
            merge_shards([])

    def test_merge_requires_sweep_kind(self, tmp_path):
        artifact = ShardArtifact(
            kind="splitsweep",
            fingerprint="f",
            shard=ShardSpec(0, 1),
            total_items=1,
            meta={},
            records=[{"item": 0, "rows": [[1, 1, 0.5, True]]}],
        )
        path = save_shard(tmp_path / "sp.json", artifact)
        with pytest.raises(ShardError, match="splitsweep"):
            merge_shards([path])


class TestClusterRouting:
    """cache-aware placement: duplicates stay together, deterministically."""

    def test_duplicates_land_in_one_group(self):
        from repro.engine.shard import cluster_items_by_fingerprint

        groups = cluster_items_by_fingerprint(
            ["a", "b", "a", "c", "b", "a"], 2
        )
        # Partition of all items.
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(6))
        # Each fingerprint's items share one group.
        fingerprints = ["a", "b", "a", "c", "b", "a"]
        for group in groups:
            for other in groups:
                if group is other:
                    continue
                shared = {fingerprints[i] for i in group} & {
                    fingerprints[i] for i in other
                }
                assert not shared

    def test_lpt_balances_and_is_deterministic(self):
        from repro.engine.shard import cluster_items_by_fingerprint

        fingerprints = ["x"] * 4 + ["y"] * 3 + ["z"] * 2 + ["w"]
        groups = cluster_items_by_fingerprint(fingerprints, 2)
        # LPT: x(4) seeds group 0, y(3) group 1, z(2) joins the
        # lighter group 1, w(1) the now-lighter group 0 — 5/5 split.
        assert groups == [(0, 1, 2, 3, 9), (4, 5, 6, 7, 8)]
        assert groups == cluster_items_by_fingerprint(fingerprints, 2)

    def test_fewer_clusters_than_groups_drops_empties(self):
        from repro.engine.shard import cluster_items_by_fingerprint

        groups = cluster_items_by_fingerprint(["a", "a", "a"], 4)
        assert groups == [(0, 1, 2)]

    def test_group_count_validated(self):
        from repro.engine.shard import cluster_items_by_fingerprint

        with pytest.raises(ShardError):
            cluster_items_by_fingerprint(["a"], 0)

    def test_item_fingerprints_match_cache_keys(self):
        from repro.core.fingerprint import taskset_fingerprint
        from repro.engine.sweep import item_fingerprints
        from repro.generator.taskset_gen import generate_taskset

        spec = _spec()
        fingerprints = item_fingerprints(spec)
        assert len(fingerprints) == spec.total_items
        # Spot-check: item 7 of n_tasksets=6 is point 1, taskset 1.
        rng = spec.taskset_rng(1, 1)
        taskset = generate_taskset(rng, spec.utilizations[1], spec.profile)
        assert fingerprints[7] == taskset_fingerprint(taskset)


class TestParseItems:
    def test_parses_sorts_and_dedupes(self):
        assert parse_items("9,3,3,15") == (3, 9, 15)
        assert parse_items(" 1 , 2 ,") == (1, 2)

    @pytest.mark.parametrize("bad", ["", ",", "a,b", "1,-2", "1.5"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ShardError):
            parse_items(bad)


class TestItemSubsetRuns:
    """Explicit item subsets: the elastic sub-shard execution path."""

    def test_items_outside_slice_rejected(self):
        spec = _spec()
        with pytest.raises(AnalysisError, match="outside shard"):
            SweepEngine().run(spec, shard=ShardSpec(0, 2), items=[1])
        with pytest.raises(AnalysisError, match="outside shard"):
            SweepEngine().run(spec, items=[spec.total_items])

    def test_empty_items_rejected(self):
        with pytest.raises(AnalysisError, match="no work items"):
            SweepEngine().run(_spec(), shard=ShardSpec(0, 2), items=[])

    def test_items_without_shard_default_to_whole_space(self, tmp_path):
        # items alone means "shard 1/1 restricted to these items".
        spec = _spec()
        path = tmp_path / "sub.json"
        SweepEngine().run(spec, shard_out=path, items=[0, 3, 5])
        artifact = load_shard(path)
        assert artifact.shard == ShardSpec(0, 1)
        assert artifact.covered_items() == {0, 3, 5}

    def test_subset_checkpoint_resumes_into_superset(self, tmp_path):
        # Sub-shard 1 inherits the straggler's checkpoint: a checkpoint
        # covering part of the slice must resume cleanly into a run
        # whose planned items are checkpoint-covered plus new ones.
        spec = _spec()
        shard = ShardSpec(0, 2)
        checkpoint = tmp_path / "cp.json"
        items = list(shard.items(spec.total_items))
        SweepEngine(checkpoint_path=checkpoint).run(
            spec, shard=shard, items=items[:2]
        )
        out = tmp_path / "sub.json"
        SweepEngine(checkpoint_path=checkpoint).run(
            spec, shard=shard, shard_out=out, items=items[:4]
        )
        assert load_shard(out).covered_items() == set(items[:4])


class TestSubShardMerge:
    """Multiple disjoint artifacts per shard index are mergeable."""

    def test_disjoint_sub_shards_merge(self, tmp_path):
        spec = _spec()
        shard0 = ShardSpec(0, 2)
        items = list(shard0.items(spec.total_items))
        paths = []
        for j, subset in enumerate((items[0::2], items[1::2])):
            path = tmp_path / f"s0-{j}.json"
            SweepEngine().run(spec, shard=shard0, shard_out=path, items=subset)
            paths.append(path)
        whole = tmp_path / "s1.json"
        SweepEngine().run(spec, shard=ShardSpec(1, 2), shard_out=whole)
        merged = merge_shards(paths + [whole])
        reference = SweepEngine().run(spec)
        assert [p.schedulable for p in merged.points] == [
            p.schedulable for p in reference.points
        ]

    def test_overlapping_sub_shards_rejected(self, tmp_path):
        spec = _spec()
        shard0 = ShardSpec(0, 2)
        items = list(shard0.items(spec.total_items))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        SweepEngine().run(spec, shard=shard0, shard_out=a, items=items)
        SweepEngine().run(spec, shard=shard0, shard_out=b, items=items[:2])
        whole = tmp_path / "s1.json"
        SweepEngine().run(spec, shard=ShardSpec(1, 2), shard_out=whole)
        with pytest.raises(ShardError, match="overlap"):
            merge_shards([a, b, whole])

    def test_sub_shards_with_gap_rejected(self, tmp_path):
        spec = _spec()
        shard0 = ShardSpec(0, 2)
        items = list(shard0.items(spec.total_items))
        a = tmp_path / "a.json"
        SweepEngine().run(spec, shard=shard0, shard_out=a, items=items[:2])
        whole = tmp_path / "s1.json"
        SweepEngine().run(spec, shard=ShardSpec(1, 2), shard_out=whole)
        with pytest.raises(ShardError, match="gap|uncovered"):
            merge_shards([a, whole])
