"""Unit tests for :mod:`repro.engine` — executors, sweep, checkpoints."""

import json

import pytest

from repro.core.analyzer import AnalysisMethod
from repro.engine.checkpoint import (
    ChunkRecord,
    SweepCheckpoint,
    coalesce_records,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.executors import (
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
    map_ordered,
)
from repro.engine.sweep import SweepEngine, SweepSpec, _contiguous_runs
from repro.exceptions import AnalysisError
from repro.generator.profiles import GROUP1


def _spec(**overrides):
    defaults = dict(
        m=2,
        utilizations=(0.5, 1.5),
        n_tasksets=6,
        profile=GROUP1,
        seed=42,
        label="engine-test",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, MultiprocessExecutor)
        assert pool.jobs == 3
        with pytest.raises(AnalysisError):
            make_executor(0)
        with pytest.raises(AnalysisError):
            MultiprocessExecutor(-1)

    def test_serial_order(self):
        executor = SerialExecutor()
        assert list(executor.map_unordered(abs, [-3, 1, -2])) == [3, 1, 2]

    def test_pool_empty_payloads(self):
        assert list(MultiprocessExecutor(2).map_unordered(abs, [])) == []

    def test_map_ordered_restores_payload_order(self):
        expected = [abs(x) for x in range(-8, 8)]
        assert map_ordered(SerialExecutor(), abs, range(-8, 8)) == expected
        assert map_ordered(MultiprocessExecutor(3), abs, range(-8, 8)) == expected


class TestSweepSpec:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            _spec(n_tasksets=0)
        with pytest.raises(AnalysisError):
            _spec(methods=())

    def test_rng_independent_of_order(self):
        spec = _spec()
        a = spec.taskset_rng(1, 3).integers(0, 1 << 30, 4)
        b = spec.taskset_rng(0, 0).integers(0, 1 << 30, 4)
        c = spec.taskset_rng(1, 3).integers(0, 1 << 30, 4)
        assert list(a) == list(c)
        assert list(a) != list(b)

    def test_fingerprint_sensitivity(self):
        base = _spec()
        assert base.fingerprint() == _spec().fingerprint()
        assert base.fingerprint() != _spec(seed=43).fingerprint()
        assert base.fingerprint() != _spec(n_tasksets=7).fingerprint()
        assert (
            base.fingerprint()
            != _spec(methods=(AnalysisMethod.FP_IDEAL,)).fingerprint()
        )


class TestChunking:
    def test_contiguous_runs(self):
        assert _contiguous_runs([]) == []
        assert _contiguous_runs([0, 1, 2, 5, 6, 9]) == [(0, 3), (5, 7), (9, 10)]

    def test_chunks_respect_size_and_gaps(self):
        engine = SweepEngine(chunk_size=2)
        assert engine._chunks([0, 1, 2, 5, 6, 9]) == [(0, 2), (2, 3), (5, 7), (9, 10)]

    def test_bad_chunk_size(self):
        with pytest.raises(AnalysisError):
            SweepEngine(chunk_size=0)


class TestEngineRun:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return SweepEngine().run(_spec())

    def test_result_shape(self, serial_result):
        assert serial_result.m == 2
        assert serial_result.label == "engine-test"
        assert [p.utilization for p in serial_result.points] == [0.5, 1.5]
        assert all(p.n_tasksets == 6 for p in serial_result.points)

    def test_parallel_bit_identical(self, serial_result):
        parallel = SweepEngine(executor=MultiprocessExecutor(3)).run(_spec())
        assert [p.schedulable for p in parallel.points] == [
            p.schedulable for p in serial_result.points
        ]

    def test_chunking_does_not_change_counts(self, serial_result):
        chunked = SweepEngine(chunk_size=5).run(_spec())
        assert [p.schedulable for p in chunked.points] == [
            p.schedulable for p in serial_result.points
        ]

    def test_progress_events(self):
        events = []
        SweepEngine(progress=events.append).run(_spec(n_tasksets=3))
        assert [(e.utilization, e.done_in_point, e.n_tasksets) for e in events] == [
            (0.5, 1, 3), (0.5, 2, 3), (0.5, 3, 3),
            (1.5, 1, 3), (1.5, 2, 3), (1.5, 3, 3),
        ]
        assert [e.done_items for e in events] == list(range(1, 7))
        assert all(e.total_items == 6 for e in events)


class TestCheckpoint:
    def test_coalesce(self):
        records = [
            ChunkRecord(3, 5, {0: {"X": 1}}),
            ChunkRecord(0, 3, {0: {"X": 2}}),
            ChunkRecord(7, 9, {1: {"X": 1}}),
        ]
        merged = coalesce_records(records)
        assert [(r.start, r.stop) for r in merged] == [(0, 5), (7, 9)]
        assert merged[0].counts == {0: {"X": 3}}

    def test_coalesce_rejects_overlap(self):
        with pytest.raises(AnalysisError):
            coalesce_records([ChunkRecord(0, 3, {}), ChunkRecord(2, 4, {})])

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cp.json"
        assert load_checkpoint(path) is None
        checkpoint = SweepCheckpoint("abc", [ChunkRecord(0, 2, {0: {"X": 1}})])
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == "abc"
        assert loaded.records == [ChunkRecord(0, 2, {0: {"X": 1}})]
        assert loaded.covered_items() == {0, 1}

    def test_corrupt_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("not json")
        with pytest.raises(AnalysisError):
            load_checkpoint(path)
        path.write_text(json.dumps({"version": 99, "fingerprint": "x", "records": []}))
        with pytest.raises(AnalysisError):
            load_checkpoint(path)

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        from repro.engine.sweep import _run_chunk

        spec = _spec()
        path = tmp_path / "sweep.json"
        full = SweepEngine().run(spec)

        # Simulate an interrupted run: a checkpoint covering only the
        # first 5 of the 12 work items.
        partial = _run_chunk((spec, 0, 5))
        save_checkpoint(path, SweepCheckpoint(spec.fingerprint(), [partial]))

        resumed = SweepEngine(checkpoint_path=path).run(spec)
        assert [p.schedulable for p in resumed.points] == [
            p.schedulable for p in full.points
        ]
        # A re-run over a complete checkpoint is a no-op with the same result.
        cached = SweepEngine(checkpoint_path=path).run(spec)
        assert [p.schedulable for p in cached.points] == [
            p.schedulable for p in full.points
        ]

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepEngine(checkpoint_path=path).run(_spec())
        with pytest.raises(AnalysisError):
            SweepEngine(checkpoint_path=path).run(_spec(seed=43))

    def test_oversized_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        spec = _spec()
        SweepEngine(checkpoint_path=path).run(spec)
        smaller = _spec(n_tasksets=2)
        save_checkpoint(
            path,
            SweepCheckpoint(smaller.fingerprint(), load_checkpoint(path).records),
        )
        with pytest.raises(AnalysisError):
            SweepEngine(checkpoint_path=path).run(smaller)
