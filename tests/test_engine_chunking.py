"""Adaptive chunk sizing: the telemetry loop and its engine integration."""

import pytest

from repro.engine import (
    AdaptiveChunker,
    SweepEngine,
    ThreadExecutor,
    read_stream,
    seed_chunker_from_timings,
    suggest_chunk_size_from_stream,
)
from repro.engine.sweep import SweepSpec
from repro.exceptions import AnalysisError
from repro.generator.profiles import GROUP1


def _spec(**overrides):
    defaults = dict(
        m=2,
        utilizations=(0.5, 1.5),
        n_tasksets=5,
        profile=GROUP1,
        seed=7,
        label="chunking-test",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestAdaptiveChunker:
    def test_initial_size_before_telemetry(self):
        assert AdaptiveChunker().chunk_size() == 1
        assert AdaptiveChunker(initial_size=8).chunk_size() == 8

    def test_sizes_toward_target(self):
        chunker = AdaptiveChunker(target_seconds=1.0)
        chunker.observe(10, 0.1)  # 10 ms/item -> ~100 items per second
        assert chunker.chunk_size() == 100
        assert chunker.samples == 1
        assert chunker.per_item_seconds == pytest.approx(0.01)

    def test_smoothing_blends_samples(self):
        chunker = AdaptiveChunker(target_seconds=1.0, smoothing=0.5)
        chunker.observe(1, 0.01)
        chunker.observe(1, 0.03)
        assert chunker.per_item_seconds == pytest.approx(0.02)
        assert chunker.chunk_size() == 50

    def test_clamped_to_bounds(self):
        chunker = AdaptiveChunker(target_seconds=1.0, max_size=16)
        chunker.observe(1000, 0.001)  # absurdly cheap items
        assert chunker.chunk_size() == 16
        slow = AdaptiveChunker(target_seconds=0.01, min_size=2)
        slow.observe(1, 10.0)  # absurdly expensive items
        assert slow.chunk_size() == 2

    def test_zero_duration_chunks_do_not_divide_by_zero(self):
        chunker = AdaptiveChunker()
        chunker.observe(5, 0.0)
        assert chunker.chunk_size() == chunker.max_size

    def test_empty_observation_ignored(self):
        chunker = AdaptiveChunker()
        chunker.observe(0, 1.0)
        assert chunker.samples == 0
        assert chunker.chunk_size() == chunker.initial_size

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(target_seconds=0),
            dict(min_size=0),
            dict(max_size=0),
            dict(min_size=8, max_size=4),
            dict(initial_size=0),
            dict(initial_size=10000, max_size=100),
            dict(smoothing=0.0),
            dict(smoothing=1.5),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(AnalysisError):
            AdaptiveChunker(**kwargs)

    def test_seed_from_timings(self):
        chunker = seed_chunker_from_timings(
            AdaptiveChunker(target_seconds=1.0, smoothing=1.0),
            [(2, 0.2), (4, 0.2)],
        )
        assert chunker.samples == 2
        assert chunker.chunk_size() == 20  # last sample: 50 ms/item


class TestEngineTelemetry:
    def test_stream_chunks_carry_elapsed_seconds(self, tmp_path):
        stream = tmp_path / "sweep.jsonl"
        SweepEngine().run(_spec(), stream=stream)
        dump = read_stream(stream)
        assert dump.chunks, "sweep produced no chunk lines"
        assert len(dump.chunk_timings) == len(dump.chunks)
        assert all(items >= 1 for items, _ in dump.chunk_timings)
        assert all(seconds >= 0.0 for _, seconds in dump.chunk_timings)

    def test_suggest_chunk_size_from_stream(self, tmp_path):
        stream = tmp_path / "sweep.jsonl"
        SweepEngine().run(_spec(), stream=stream)
        suggested = suggest_chunk_size_from_stream(stream)
        assert isinstance(suggested, int) and suggested >= 1

    def test_suggest_handles_missing_and_empty(self, tmp_path):
        assert suggest_chunk_size_from_stream(tmp_path / "nope.jsonl") is None
        bad = tmp_path / "garbage.jsonl"
        bad.write_text("not json\n")
        assert suggest_chunk_size_from_stream(bad) is None

    def test_adaptive_run_is_bit_identical_to_serial(self):
        spec = _spec(n_tasksets=7)
        serial = SweepEngine().run(spec)
        with ThreadExecutor(3) as executor:
            # chunk_size=None + pool executor -> the adaptive path.
            adaptive = SweepEngine(executor=executor).run(spec)
        assert [p.schedulable for p in adaptive.points] == [
            p.schedulable for p in serial.points
        ]

    def test_preseeded_chunker_is_used(self):
        spec = _spec(n_tasksets=4)
        chunker = AdaptiveChunker(initial_size=3)
        with ThreadExecutor(2) as executor:
            SweepEngine(executor=executor, chunker=chunker).run(spec)
        # The engine fed the chunker telemetry from its own chunks.
        assert chunker.samples > 0
