"""Cross-executor conformance suite for the sweep engine.

The engine's contract is a single sentence: *for one
:class:`~repro.engine.SweepSpec`, every execution mode produces the
same result, bit for bit*.  This suite pins that sentence down across
the whole mode matrix —

* executors: serial, multiprocessing pool, thread pool;
* chunking: any chunk size, including sizes that straddle points;
* sharding: any partition into 1..4 shards, merged via
  :func:`~repro.engine.merge_shards` (and the split sweep's own
  :func:`~repro.experiments.splitsweep.merge_split_shards`);
* interruption: a run killed mid-sweep and resumed from its checkpoint,
  sharded or not;
* streaming: the JSONL stream's chunk records sum to the final counts;
* orchestration: a whole sweep dispatched as shard subprocesses by the
  orchestrator tier — including a shard that fails and is retried —
  merges back to the exact serial result.

"Bit for bit" means full :class:`~repro.engine.SweepResult` dataclass
equality with only the wall-clock field zeroed (:func:`_strip`): same
points, same denominators, same method names, same counts.  Specs are
hypothesis-generated (``tests/strategies.sweep_specs``) so the matrix
is exercised over many shapes, not one blessed example.
"""

import dataclasses
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    MultiprocessExecutor,
    SerialExecutor,
    ShardSpec,
    SweepEngine,
    SweepResult,
    SweepSpec,
    ThreadExecutor,
    merge_shards,
    read_stream,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.splitsweep import merge_split_shards, run_split_sweep
from repro.generator.profiles import GROUP1
from tests.strategies import sweep_specs

#: Shared hypothesis profile: engine runs are slow-ish per example, so
#: keep example counts small and disable the per-example deadline.
CONFORMANCE = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _strip(result: SweepResult) -> SweepResult:
    """The result minus wall-clock, for bit-for-bit comparison."""
    return dataclasses.replace(result, elapsed_seconds=0.0)


def _reference(spec: SweepSpec) -> SweepResult:
    """The baseline every mode must reproduce: serial, chunk size 1."""
    return _strip(SweepEngine().run(spec))


class _InterruptingExecutor:
    """Serial executor that dies (like Ctrl-C) after ``after`` chunks."""

    jobs = 1

    def __init__(self, after: int) -> None:
        self.after = after

    def map_unordered(self, fn, payloads):
        for index, payload in enumerate(payloads):
            if index == self.after:
                raise KeyboardInterrupt
            yield fn(payload)


def _fixed_spec(**overrides) -> SweepSpec:
    defaults = dict(
        m=2,
        utilizations=(0.5, 1.0, 1.5),
        n_tasksets=4,
        profile=GROUP1,
        seed=20160314,
        label="conformance-fixed",
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestExecutorConformance:
    """serial == multiprocess == threaded, with and without chunking."""

    def test_all_executors_bit_identical(self):
        spec = _fixed_spec()
        reference = _reference(spec)
        for executor in (
            SerialExecutor(),
            ThreadExecutor(3),
            MultiprocessExecutor(3),
        ):
            result = SweepEngine(executor=executor).run(spec)
            assert _strip(result) == reference, type(executor).__name__

    @CONFORMANCE
    @given(spec=sweep_specs(), chunk_size=st.integers(1, 7))
    def test_thread_executor_any_chunking(self, spec, chunk_size):
        reference = _reference(spec)
        chunked = SweepEngine(
            executor=ThreadExecutor(2), chunk_size=chunk_size
        ).run(spec)
        assert _strip(chunked) == reference

    @CONFORMANCE
    @given(spec=sweep_specs(), chunk_size=st.integers(1, 7))
    def test_serial_any_chunking(self, spec, chunk_size):
        assert _strip(SweepEngine(chunk_size=chunk_size).run(spec)) == _reference(
            spec
        )


class TestShardConformance:
    """Any shard partition merges back to the exact serial result."""

    @CONFORMANCE
    @given(
        spec=sweep_specs(),
        shard_count=st.integers(1, 4),
        chunk_size=st.integers(1, 5),
    )
    def test_any_partition_merges_bit_identical(
        self, spec, shard_count, chunk_size
    ):
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for index in range(shard_count):
                path = Path(tmp) / f"shard{index}.json"
                SweepEngine(chunk_size=chunk_size).run(
                    spec, shard=ShardSpec(index, shard_count), shard_out=path
                )
                paths.append(path)
            assert _strip(merge_shards(paths)) == reference

    def test_sharded_runs_on_any_executor(self):
        spec = _fixed_spec(n_tasksets=5)
        reference = _reference(spec)
        for executor in (ThreadExecutor(2), MultiprocessExecutor(2)):
            with tempfile.TemporaryDirectory() as tmp:
                paths = []
                for index in range(3):
                    path = Path(tmp) / f"shard{index}.json"
                    SweepEngine(executor=executor).run(
                        spec, shard=ShardSpec(index, 3), shard_out=path
                    )
                    paths.append(path)
                assert _strip(merge_shards(paths)) == reference, (
                    type(executor).__name__
                )

    def test_partial_shard_result_denominators(self):
        # 2 points x 5 task-sets striped over 3 shards: shard 0 owns
        # items 0,3,6,9 -> 2 items per point.
        spec = _fixed_spec(utilizations=(0.5, 1.5), n_tasksets=5)
        partial = SweepEngine().run(spec, shard=ShardSpec(0, 3))
        assert [p.n_tasksets for p in partial.points] == [2, 2]
        full = SweepEngine().run(spec)
        assert [p.n_tasksets for p in full.points] == [5, 5]


class TestInterruptResumeConformance:
    """A killed run resumed from its checkpoint finishes bit-identically."""

    @CONFORMANCE
    @given(spec=sweep_specs(), interrupt_after=st.integers(0, 5))
    def test_interrupted_then_resumed(self, spec, interrupt_after):
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = Path(tmp) / "cp.json"
            interrupted = SweepEngine(
                executor=_InterruptingExecutor(interrupt_after),
                checkpoint_path=checkpoint,
                checkpoint_interval=0.0,
            )
            try:
                interrupted.run(spec)
            except KeyboardInterrupt:
                pass
            resumed = SweepEngine(checkpoint_path=checkpoint).run(spec)
            assert _strip(resumed) == reference

    def test_interrupted_shard_resumes_and_merges(self):
        spec = _fixed_spec()
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            shard0 = ShardSpec(0, 2)
            checkpoint = Path(tmp) / "cp0.json"
            paths = [Path(tmp) / "s0.json", Path(tmp) / "s1.json"]
            try:
                SweepEngine(
                    executor=_InterruptingExecutor(2),
                    checkpoint_path=checkpoint,
                    checkpoint_interval=0.0,
                ).run(spec, shard=shard0, shard_out=paths[0])
            except KeyboardInterrupt:
                pass
            assert not paths[0].exists()  # artifact only on completion
            SweepEngine(checkpoint_path=checkpoint).run(
                spec, shard=shard0, shard_out=paths[0]
            )
            SweepEngine().run(spec, shard=ShardSpec(1, 2), shard_out=paths[1])
            assert _strip(merge_shards(paths)) == reference

    def test_shard_checkpoints_are_not_interchangeable(self):
        from repro.exceptions import AnalysisError

        spec = _fixed_spec()
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = Path(tmp) / "cp.json"
            SweepEngine(checkpoint_path=checkpoint).run(spec, shard=ShardSpec(0, 2))
            with pytest.raises(AnalysisError):
                SweepEngine(checkpoint_path=checkpoint).run(
                    spec, shard=ShardSpec(1, 2)
                )
            with pytest.raises(AnalysisError):
                SweepEngine(checkpoint_path=checkpoint).run(spec)


class TestStreamConformance:
    """The JSONL stream reproduces the final counts exactly."""

    @CONFORMANCE
    @given(spec=sweep_specs(), chunk_size=st.integers(1, 5))
    def test_stream_records_sum_to_result(self, spec, chunk_size):
        with tempfile.TemporaryDirectory() as tmp:
            stream = Path(tmp) / "sweep.jsonl"
            result = SweepEngine(chunk_size=chunk_size).run(spec, stream=stream)
            dump = read_stream(stream)
            assert dump.complete
            assert dump.header["fingerprint"] == spec.fingerprint()
            assert dump.header["total_items"] == spec.total_items
            expected = {
                point: dict(p.schedulable)
                for point, p in enumerate(result.points)
            }
            assert dump.counts() == expected

    def test_resumed_stream_is_self_contained(self):
        spec = _fixed_spec()
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            checkpoint = Path(tmp) / "cp.json"
            stream = Path(tmp) / "sweep.jsonl"
            try:
                SweepEngine(
                    executor=_InterruptingExecutor(3),
                    checkpoint_path=checkpoint,
                    checkpoint_interval=0.0,
                ).run(spec, stream=stream)
            except KeyboardInterrupt:
                pass
            partial = read_stream(stream)
            assert not partial.complete  # no summary line: torn run
            SweepEngine(checkpoint_path=checkpoint).run(spec, stream=stream)
            dump = read_stream(stream)
            assert dump.complete
            assert sum(r.stop - r.start for r in dump.chunks) == spec.total_items
            expected = {
                point: dict(p.schedulable)
                for point, p in enumerate(reference.points)
            }
            assert dump.counts() == expected
            from repro.engine.streaming import iter_stream

            replayed = [
                line
                for line in iter_stream(stream)
                if line.get("type") == "chunk" and line.get("replayed")
            ]
            assert replayed  # checkpointed chunks re-emitted into new stream


class TestExperimentConformance:
    """The acceptance criterion, at the experiment API level."""

    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4])
    def test_figure2_sharded_merge_bit_identical(self, shard_count, tmp_path):
        kwargs = dict(m=2, n_tasksets=4, seed=11, step=0.5)
        reference = _strip(run_figure2(**kwargs))
        paths = []
        for index in range(shard_count):
            path = tmp_path / f"fig2-{index}.json"
            run_figure2(
                **kwargs,
                shard=ShardSpec(index, shard_count),
                shard_out=path,
            )
            paths.append(path)
        assert _strip(merge_shards(paths)) == reference

    def test_splitsweep_sharded_merge_bit_identical(self, tmp_path):
        kwargs = dict(
            m=2, utilization=1.2, thresholds=[100.0, 25.0], n_tasksets=5,
            seed=9, overhead=0.5,
        )
        reference = run_split_sweep(**kwargs)
        paths = []
        for index in range(2):
            path = tmp_path / f"split-{index}.json"
            run_split_sweep(**kwargs, shard=ShardSpec(index, 2), shard_out=path)
            paths.append(path)
        # Bit-identical including the float means: the merge reduces
        # per-item rows in corpus order, exactly like the serial run.
        assert merge_split_shards(paths) == reference

    def test_splitsweep_parallel_jobs_bit_identical(self):
        kwargs = dict(
            m=2, utilization=1.2, thresholds=[100.0, 25.0], n_tasksets=4,
            seed=9,
        )
        assert run_split_sweep(**kwargs, jobs=2) == run_split_sweep(**kwargs)


class TestOrchestratorConformance:
    """The one-command cluster run reproduces the serial result exactly."""

    KWARGS = dict(m=2, n_tasksets=4, seed=11, step=0.5)

    def _reference(self):
        return _strip(run_figure2(**self.KWARGS))

    def test_orchestrated_figure2_bit_identical(self, tmp_path):
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        plan = plan_figure2(**self.KWARGS)
        outcome = Orchestrator(
            plan, tmp_path / "orch", workers=3, poll_interval=0.05
        ).run()
        assert _strip(outcome.result) == self._reference()
        assert outcome.view.done_items == plan.total_items
        assert outcome.retries == 0

    def test_failed_shard_retried_and_still_bit_identical(self, tmp_path):
        import sys

        from repro.engine.backends import LocalBackend
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        class FlakyBackend(LocalBackend):
            """First launch of shard 2/3 dies immediately (exit 3)."""

            def __init__(self):
                super().__init__(slots=3)
                self.sabotaged = 0

            def launch(self, argv, log_path, env=None):
                argv = list(argv)
                if self.sabotaged == 0 and "--shard" in argv:
                    if argv[argv.index("--shard") + 1] == "2/3":
                        self.sabotaged += 1
                        argv = [sys.executable, "-c", "import sys; sys.exit(3)"]
                return super().launch(argv, log_path, env=env)

        plan = plan_figure2(**self.KWARGS)
        with FlakyBackend() as backend:
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, retries=2,
                poll_interval=0.05,
            ).run()
        assert backend.sabotaged == 1
        assert outcome.retries == 1
        assert outcome.attempts[1] == 2  # shard 2/3 needed a second launch
        assert _strip(outcome.result) == self._reference()

    def test_orchestrated_splitsweep_identical(self, tmp_path):
        from repro.engine.orchestrator import Orchestrator, plan_splitsweep

        kwargs = dict(
            m=2, utilization=1.2, thresholds=[100.0, 25.0], n_tasksets=5,
            seed=9, overhead=0.5,
        )
        reference = run_split_sweep(**kwargs)
        outcome = Orchestrator(
            plan_splitsweep(**kwargs), tmp_path / "orch", workers=2,
            poll_interval=0.05,
        ).run()
        assert outcome.result == reference

    @pytest.mark.parametrize("cache", ["off", "readwrite"])
    def test_cache_aware_placement_bit_identical(self, cache, tmp_path):
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        kwargs = dict(self.KWARGS, placement="cache-aware", cache=cache)
        if cache != "off":
            kwargs["cache_dir"] = str(tmp_path / "vc")
        outcome = Orchestrator(
            plan_figure2(**kwargs), tmp_path / "orch", workers=3,
            poll_interval=0.05,
        ).run()
        assert _strip(outcome.result) == self._reference()
        assert outcome.view.done_items == plan_figure2(**kwargs).total_items


class TestElasticConformance:
    """Elastic re-partitioning keeps the bit-identical contract.

    Sub-shard artifacts (same shard coordinates, disjoint item subsets,
    the first inheriting the straggler's checkpoint) must reassemble
    into exactly the serial result — at the merge level for arbitrary
    hypothesis-generated partitions, and end to end through an
    orchestrator that really splits stragglers onto idle slots.
    """

    @CONFORMANCE
    @given(
        spec=sweep_specs(),
        shard_count=st.integers(1, 3),
        data=st.data(),
    )
    def test_any_elastic_partition_merges_bit_identical(
        self, spec, shard_count, data
    ):
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for index in range(shard_count):
                shard = ShardSpec(index, shard_count)
                items = list(shard.items(spec.total_items))
                if len(items) >= 2 and data.draw(
                    st.booleans(), label=f"split shard {index}"
                ):
                    # Split this shard like the orchestrator would:
                    # covered prefix inherited by sub-shard 1, the rest
                    # strided over 2..parts sub-shards.
                    parts = data.draw(
                        st.integers(2, min(4, len(items))),
                        label=f"parts of shard {index}",
                    )
                    cut = data.draw(
                        st.integers(0, len(items) - parts),
                        label=f"covered prefix of shard {index}",
                    )
                    covered, remaining = items[:cut], items[cut:]
                    groups = [remaining[p::parts] for p in range(parts)]
                    subsets = [sorted(covered + groups[0]), *groups[1:]]
                    for part, subset in enumerate(subsets):
                        path = Path(tmp) / f"s{index}.{part}.json"
                        SweepEngine().run(
                            spec, shard=shard, shard_out=path, items=subset
                        )
                        paths.append(path)
                else:
                    path = Path(tmp) / f"s{index}.json"
                    SweepEngine().run(spec, shard=shard, shard_out=path)
                    paths.append(path)
            assert _strip(merge_shards(paths)) == reference

    def test_orchestrated_elastic_split_bit_identical(self, tmp_path):
        # 2 shards on 3 slots: the idle slot forces a split immediately
        # (elastic_after=0), so the merged result really is assembled
        # from sub-shard artifacts.
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        kwargs = dict(m=2, n_tasksets=6, seed=11, step=0.5)
        reference = _strip(run_figure2(**kwargs))
        plan = plan_figure2(**kwargs)
        outcome = Orchestrator(
            plan, tmp_path / "orch", workers=3, shards=2,
            poll_interval=0.05, elastic=True, elastic_after=0.0,
        ).run()
        assert outcome.splits >= 1
        assert _strip(outcome.result) == reference
        # The artifacts on disk are themselves a mergeable set — the
        # sweep-merge glob path works on an elastically-split run.
        artifacts = sorted((tmp_path / "orch").glob("shard-*.artifact.json"))
        assert len(artifacts) > 2  # sub-shards present
        assert _strip(merge_shards(artifacts)) == reference

    def test_elastic_requires_checkpoint_support(self, tmp_path):
        from repro.engine.orchestrator import Orchestrator, plan_splitsweep
        from repro.exceptions import OrchestrationError

        plan = plan_splitsweep(
            m=2, utilization=1.2, thresholds=[100.0], n_tasksets=4, seed=9
        )
        with pytest.raises(OrchestrationError, match="checkpoint"):
            Orchestrator(plan, tmp_path / "orch", workers=2, elastic=True)


class TestDaemonConformance:
    """Daemon-backend orchestration reproduces the serial result."""

    KWARGS = dict(m=2, n_tasksets=6, seed=11, step=0.5)

    @pytest.fixture
    def daemon_pool(self):
        import tempfile as tf

        from repro.engine.daemon import WorkerDaemon

        with tf.TemporaryDirectory(prefix="reprod-", dir="/tmp") as tmp:
            daemons = []
            for index in range(3):
                daemon = WorkerDaemon(Path(tmp) / f"w{index}.sock")
                daemon.serve_in_thread()
                daemons.append(daemon)
            try:
                yield daemons
            finally:
                for daemon in daemons:
                    daemon.stop()

    def test_daemon_orchestration_bit_identical(self, daemon_pool, tmp_path):
        from repro.engine.backends import DaemonBackend
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        reference = _strip(run_figure2(**self.KWARGS))
        plan = plan_figure2(**self.KWARGS)
        with DaemonBackend([d.socket_path for d in daemon_pool]) as backend:
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, poll_interval=0.05,
            ).run()
        assert _strip(outcome.result) == reference
        assert outcome.retries == 0

    def test_daemon_killed_mid_run_with_elastic_still_bit_identical(
        self, daemon_pool, tmp_path
    ):
        # The acceptance-criteria case: daemons + elastic splits + a
        # daemon dying mid-run, healed back to the exact serial result.
        from repro.engine.backends import DaemonBackend
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        reference = _strip(run_figure2(**self.KWARGS))
        plan = plan_figure2(**self.KWARGS)
        killed = {"done": False}

        def progress(view):
            if not killed["done"] and any(
                s.state != "waiting" for s in view.shards
            ):
                daemon_pool[0].stop()  # socket dies like a SIGKILL
                killed["done"] = True

        with DaemonBackend([d.socket_path for d in daemon_pool]) as backend:
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, shards=2,
                retries=3, poll_interval=0.05,
                elastic=True, elastic_after=0.0, progress=progress,
            ).run()
        assert killed["done"]
        assert _strip(outcome.result) == reference


class TestCacheConformance:
    """The verdict cache never changes a result — only how fast it lands.

    Cache-off, cache-miss (cold readwrite), cache-hit (warm read) and
    cross-process cache sharing must all be bit-identical to the plain
    serial run; telemetry must account for every item.
    """

    def _cache_totals(self, stream: Path) -> tuple[int, int]:
        from repro.engine.streaming import iter_stream

        hits = misses = 0
        for line in iter_stream(stream):
            if line.get("type") == "chunk" and "cache" in line:
                hits += line["cache"]["hits"]
                misses += line["cache"]["misses"]
        return hits, misses

    @CONFORMANCE
    @given(spec=sweep_specs(), chunk_size=st.integers(1, 5))
    def test_cache_modes_bit_identical(self, spec, chunk_size):
        reference = _reference(spec)
        with tempfile.TemporaryDirectory() as tmp:
            cache_dir = Path(tmp) / "cache"
            cold = SweepEngine(
                chunk_size=chunk_size, cache="readwrite", cache_dir=cache_dir
            ).run(spec, stream=Path(tmp) / "cold.jsonl")
            warm = SweepEngine(
                chunk_size=chunk_size, cache="read", cache_dir=cache_dir
            ).run(spec, stream=Path(tmp) / "warm.jsonl")
            assert _strip(cold) == reference
            assert _strip(warm) == reference
            hits, misses = self._cache_totals(Path(tmp) / "cold.jsonl")
            assert (hits, misses) == (0, spec.total_items)
            hits, misses = self._cache_totals(Path(tmp) / "warm.jsonl")
            assert (hits, misses) == (spec.total_items, 0)

    def test_cache_shared_across_executors(self, tmp_path):
        # A serial run populates the cache; pool workers then serve the
        # whole sweep from it — and still reproduce the exact result.
        spec = _fixed_spec()
        reference = _reference(spec)
        cache_dir = tmp_path / "cache"
        SweepEngine(cache="readwrite", cache_dir=cache_dir).run(spec)
        for executor in (ThreadExecutor(3), MultiprocessExecutor(3)):
            stream = tmp_path / f"{type(executor).__name__}.jsonl"
            result = SweepEngine(
                executor=executor, cache="read", cache_dir=cache_dir
            ).run(spec, stream=stream)
            assert _strip(result) == reference, type(executor).__name__
            hits, misses = self._cache_totals(stream)
            assert (hits, misses) == (spec.total_items, 0)

    def test_sharded_runs_share_one_cache(self, tmp_path):
        spec = _fixed_spec(n_tasksets=5)
        reference = _reference(spec)
        cache_dir = tmp_path / "cache"
        paths = []
        for index in range(3):
            path = tmp_path / f"shard{index}.json"
            SweepEngine(cache="readwrite", cache_dir=cache_dir).run(
                spec, shard=ShardSpec(index, 3), shard_out=path
            )
            paths.append(path)
        assert _strip(merge_shards(paths)) == reference
        # Re-merging from a fully warm cache is still bit-identical.
        paths2 = []
        for index in range(3):
            path = tmp_path / f"warm{index}.json"
            stream = tmp_path / f"warm{index}.jsonl"
            SweepEngine(cache="read", cache_dir=cache_dir).run(
                spec, shard=ShardSpec(index, 3), shard_out=path, stream=stream
            )
            hits, misses = self._cache_totals(stream)
            assert misses == 0 and hits > 0
            paths2.append(path)
        assert _strip(merge_shards(paths2)) == reference

    def test_daemon_killed_mid_run_with_warm_cache_bit_identical(
        self, tmp_path
    ):
        # The acceptance-criteria case with the cache in the loop: a
        # pre-warmed verdict cache, daemon workers, an elastic split,
        # and a daemon killed mid-run — healed to the exact serial
        # result, with cache hits visible in the cluster view.
        import tempfile as tf

        from repro.engine.backends import DaemonBackend
        from repro.engine.daemon import WorkerDaemon
        from repro.engine.jobspec import ExecutionPolicy, JobSpec, Workload
        from repro.engine.orchestrator import Orchestrator, plan_figure2

        kwargs = dict(m=2, n_tasksets=6, seed=11, step=0.5)
        reference = _strip(run_figure2(**kwargs))
        cache_dir = tmp_path / "cache"
        # Warm the cache in-process: same workload, so same task-sets.
        warmup = JobSpec(
            workload=Workload(kind="figure2", **kwargs),
            execution=ExecutionPolicy(
                cache="readwrite", cache_dir=str(cache_dir)
            ),
        )
        assert _strip(SweepEngine().run(warmup)) == reference

        plan = plan_figure2(
            **kwargs, cache="readwrite", cache_dir=str(cache_dir)
        )
        killed = {"done": False}

        with tf.TemporaryDirectory(prefix="reprod-", dir="/tmp") as tmp:
            daemons = []
            for index in range(3):
                daemon = WorkerDaemon(Path(tmp) / f"w{index}.sock")
                daemon.serve_in_thread()
                daemons.append(daemon)

            def progress(view):
                if not killed["done"] and any(
                    s.state != "waiting" for s in view.shards
                ):
                    daemons[0].stop()  # socket dies like a SIGKILL
                    killed["done"] = True

            try:
                with DaemonBackend(
                    [d.socket_path for d in daemons]
                ) as backend:
                    outcome = Orchestrator(
                        plan, tmp_path / "orch", backend=backend, shards=2,
                        retries=3, poll_interval=0.05,
                        elastic=True, elastic_after=0.0, progress=progress,
                    ).run()
            finally:
                for daemon in daemons:
                    daemon.stop()
        assert killed["done"]
        assert _strip(outcome.result) == reference
        assert outcome.view.cache_hits > 0
        assert outcome.view.cache_misses == 0  # every verdict pre-warmed


#: Small workloads of the registry-promoted kinds (PR 7), one per kind.
_SENSITIVITY_KWARGS = dict(
    kind="sensitivity", m=2, n_tasksets=4, seed=7, utilization=1.0,
    max_scale=4.0,
)
_SIMULATE_KWARGS = dict(
    kind="simulate", m=2, n_tasksets=4, seed=7, utilization=1.5,
    horizon_factor=2.0,
)
_TIMING_KWARGS = dict(kind="timing", core_counts=(1, 2), n_tasksets=2, seed=7)

_REGISTRY_KINDS = pytest.mark.parametrize(
    "workload_kwargs",
    [_SENSITIVITY_KWARGS, _SIMULATE_KWARGS, _TIMING_KWARGS],
    ids=["sensitivity", "simulate", "timing"],
)


def _registry_job(workload_kwargs, **execution_kwargs):
    from repro.engine.jobspec import ExecutionPolicy, JobSpec, Workload

    return JobSpec(
        workload=Workload(**workload_kwargs),
        execution=ExecutionPolicy(**execution_kwargs),
    )


def _registry_project(kind: str, result):
    """The comparable view of a kind's result.

    Timing rows carry wall-clock seconds, which no two runs reproduce;
    the conformance contract for that kind covers the deterministic
    projection (corpus shape + schedulability verdicts) only.
    """
    if kind == "timing":
        return [(r.m, r.samples, r.positive_answers) for r in result]
    return result


class TestRegistryKindConformance:
    """The standing invariant, for the registry-promoted kinds.

    sensitivity / simulate / timing run through the same JobSpec
    surface as the grid sweeps, so they inherit the same sentence:
    serial == parallel == sharded == orchestrated == daemon-dispatched
    (timing compared on its deterministic projection).
    """

    def _serial(self, workload_kwargs):
        from repro.engine.session import run_job

        return _registry_project(
            workload_kwargs["kind"],
            run_job(_registry_job(workload_kwargs)),
        )

    @_REGISTRY_KINDS
    def test_parallel_executors_identical(self, workload_kwargs):
        from repro.engine.session import run_job

        reference = self._serial(workload_kwargs)
        kind = workload_kwargs["kind"]
        for executor, jobs in (("thread", 2), ("process", 2)):
            result = run_job(
                _registry_job(workload_kwargs, executor=executor, jobs=jobs)
            )
            assert _registry_project(kind, result) == reference, executor

    @_REGISTRY_KINDS
    @pytest.mark.parametrize("shard_count", [1, 2, 3])
    def test_sharded_merge_identical(
        self, workload_kwargs, shard_count, tmp_path
    ):
        from repro.engine.registry import merge_artifacts
        from repro.engine.session import run_job
        from repro.engine.shard import load_shard

        reference = self._serial(workload_kwargs)
        kind = workload_kwargs["kind"]
        artifacts = []
        for index in range(shard_count):
            path = tmp_path / f"shard{index}.json"
            run_job(_registry_job(
                workload_kwargs,
                shard=ShardSpec(index, shard_count), shard_out=str(path),
            ))
            artifacts.append(load_shard(path))
        merged = merge_artifacts(kind, artifacts)
        assert _registry_project(kind, merged) == reference

    @_REGISTRY_KINDS
    def test_orchestrated_identical(self, workload_kwargs, tmp_path):
        from repro.engine.orchestrator import Orchestrator, plan_from_jobspec

        reference = self._serial(workload_kwargs)
        kind = workload_kwargs["kind"]
        plan = plan_from_jobspec(_registry_job(workload_kwargs))
        outcome = Orchestrator(
            plan, tmp_path / "orch", workers=2, poll_interval=0.05
        ).run()
        assert _registry_project(kind, outcome.result) == reference
        assert outcome.view.done_items == plan.total_items

    @_REGISTRY_KINDS
    def test_daemon_dispatched_identical(self, workload_kwargs, tmp_path):
        import tempfile as tf

        from repro.engine.backends import DaemonBackend
        from repro.engine.daemon import WorkerDaemon
        from repro.engine.orchestrator import Orchestrator, plan_from_jobspec

        reference = self._serial(workload_kwargs)
        kind = workload_kwargs["kind"]
        plan = plan_from_jobspec(_registry_job(workload_kwargs))
        with tf.TemporaryDirectory(prefix="reprod-", dir="/tmp") as tmp:
            daemons = []
            for index in range(2):
                daemon = WorkerDaemon(Path(tmp) / f"w{index}.sock")
                daemon.serve_in_thread()
                daemons.append(daemon)
            try:
                with DaemonBackend(
                    [d.socket_path for d in daemons]
                ) as backend:
                    outcome = Orchestrator(
                        plan, tmp_path / "orch", backend=backend,
                        poll_interval=0.05,
                    ).run()
            finally:
                for daemon in daemons:
                    daemon.stop()
        assert _registry_project(kind, outcome.result) == reference
        assert outcome.retries == 0

    @_REGISTRY_KINDS
    def test_elastic_requires_checkpoint_support(
        self, workload_kwargs, tmp_path
    ):
        from repro.engine.orchestrator import Orchestrator, plan_from_jobspec
        from repro.exceptions import OrchestrationError

        plan = plan_from_jobspec(_registry_job(workload_kwargs))
        with pytest.raises(OrchestrationError, match="checkpoint"):
            Orchestrator(plan, tmp_path / "orch", workers=2, elastic=True)
