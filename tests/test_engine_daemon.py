"""The persistent worker daemon and its dispatch backend.

Protocol unit tests run an in-process :class:`WorkerDaemon` (served on
a background thread; submitted jobs really fork).  Failure-mode tests
cover the satellite checklist: a daemon killed mid-shard surfaces as a
failed handle (heartbeat loss) and the orchestrator's retry healing
recovers; two orchestrators cannot share one daemon socket; elastic
sub-shard artifacts merge bit-identically (the hypothesis-driven case
lives in ``tests/test_engine_conformance.py``).

Daemon sockets live in a short ``/tmp`` directory, not ``tmp_path`` —
pytest's per-test paths can exceed the ~107-byte ``AF_UNIX`` limit.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.engine.backends import (
    DAEMON_LOST_EXIT,
    DaemonBackend,
    make_backend,
)
from repro.engine.daemon import (
    DaemonClient,
    WorkerDaemon,
    ping,
    repro_argv_tail,
    wait_for_daemon,
)
from repro.exceptions import DispatchError


@pytest.fixture
def sock_dir():
    with tempfile.TemporaryDirectory(prefix="reprod-", dir="/tmp") as tmp:
        yield Path(tmp)


def _daemon(sock_dir, name="w.sock", capacity=1):
    daemon = WorkerDaemon(sock_dir / name, capacity=capacity)
    daemon.serve_in_thread()
    return daemon


def _wait_state(client, job_id, state="exited", timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        response = client.request({"op": "status", "job_id": job_id})
        if response.get("state") == state:
            return response
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached state {state!r}")


class TestProtocol:
    def test_ping_without_attach(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            response = ping(daemon.socket_path)
            assert response["ok"]
            assert response["capacity"] == 1
            assert response["running"] == 0
        finally:
            daemon.stop()

    def test_submit_runs_in_forked_child(self, sock_dir):
        daemon = _daemon(sock_dir)
        client = DaemonClient(daemon.socket_path)
        try:
            client.connect_and_attach()
            log = sock_dir / "job.log"
            response = client.request({
                "op": "submit", "job_id": "j1",
                "argv": [sys.executable, "-c", "print('forked hello')"],
                "log": str(log),
            })
            assert response["ok"]
            status = _wait_state(client, "j1")
            assert status["code"] == 0
            assert "forked hello" in log.read_text()
        finally:
            client.close()
            daemon.stop()

    def test_nonzero_exit_code_reported(self, sock_dir):
        daemon = _daemon(sock_dir)
        client = DaemonClient(daemon.socket_path)
        try:
            client.connect_and_attach()
            client.request({
                "op": "submit", "job_id": "j1",
                "argv": [sys.executable, "-c", "import sys; sys.exit(5)"],
                "log": str(sock_dir / "job.log"),
            })
            assert _wait_state(client, "j1")["code"] == 5
        finally:
            client.close()
            daemon.stop()

    def test_kill_reports_signal_exit(self, sock_dir):
        daemon = _daemon(sock_dir)
        client = DaemonClient(daemon.socket_path)
        try:
            client.connect_and_attach()
            client.request({
                "op": "submit", "job_id": "j1",
                "argv": [sys.executable, "-c", "import time; time.sleep(600)"],
                "log": str(sock_dir / "job.log"),
            })
            assert client.request({"op": "status", "job_id": "j1"})["state"] == "running"
            assert client.request({"op": "kill", "job_id": "j1"})["ok"]
            assert _wait_state(client, "j1")["code"] == -signal.SIGKILL
        finally:
            client.close()
            daemon.stop()

    def test_capacity_enforced(self, sock_dir):
        daemon = _daemon(sock_dir, capacity=1)
        client = DaemonClient(daemon.socket_path)
        try:
            client.connect_and_attach()
            client.request({
                "op": "submit", "job_id": "j1",
                "argv": [sys.executable, "-c", "import time; time.sleep(600)"],
                "log": str(sock_dir / "a.log"),
            })
            refused = client.request({
                "op": "submit", "job_id": "j2",
                "argv": [sys.executable, "-c", "print('no')"],
                "log": str(sock_dir / "b.log"),
            })
            assert not refused["ok"]
            assert "capacity" in refused["error"]
            client.request({"op": "kill", "job_id": "j1"})
        finally:
            client.close()
            daemon.stop()

    def test_duplicate_job_id_refused(self, sock_dir):
        daemon = _daemon(sock_dir, capacity=2)
        client = DaemonClient(daemon.socket_path)
        try:
            client.connect_and_attach()
            argv = [sys.executable, "-c", "print('x')"]
            assert client.request({
                "op": "submit", "job_id": "dup", "argv": argv,
                "log": str(sock_dir / "a.log"),
            })["ok"]
            again = client.request({
                "op": "submit", "job_id": "dup", "argv": argv,
                "log": str(sock_dir / "b.log"),
            })
            assert not again["ok"] and "duplicate" in again["error"]
        finally:
            client.close()
            daemon.stop()

    def test_ops_require_attach(self, sock_dir):
        daemon = _daemon(sock_dir)
        client = DaemonClient(daemon.socket_path)
        try:
            sock = __import__("socket").socket(
                __import__("socket").AF_UNIX, __import__("socket").SOCK_STREAM
            )
            sock.connect(str(daemon.socket_path))
            from repro.engine.daemon import recv_message, send_message

            send_message(sock, {"op": "status", "job_id": "j1"})
            response = recv_message(sock)
            assert not response["ok"]
            assert "attach" in response["error"]
            sock.close()
        finally:
            client.close()
            daemon.stop()

    def test_second_controller_refused(self, sock_dir):
        # The two-orchestrators-one-socket satellite, protocol level.
        daemon = _daemon(sock_dir)
        first = DaemonClient(daemon.socket_path)
        second = DaemonClient(daemon.socket_path)
        try:
            first.connect_and_attach()
            with pytest.raises(DispatchError, match="already has a controller"):
                second.connect_and_attach()
        finally:
            first.close()
            second.close()
            daemon.stop()

    def test_controller_slot_frees_on_detach(self, sock_dir):
        daemon = _daemon(sock_dir)
        first = DaemonClient(daemon.socket_path)
        first.connect_and_attach()
        first.close()
        second = DaemonClient(daemon.socket_path)
        try:
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    second.connect_and_attach()
                    break
                except DispatchError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.02)
        finally:
            second.close()
            daemon.stop()

    def test_detach_kills_running_jobs(self, sock_dir):
        daemon = _daemon(sock_dir)
        client = DaemonClient(daemon.socket_path)
        client.connect_and_attach()
        response = client.request({
            "op": "submit", "job_id": "j1",
            "argv": [sys.executable, "-c", "import time; time.sleep(600)"],
            "log": str(sock_dir / "a.log"),
        })
        child = response["pid"]
        client.close()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(child, 0)
                except ProcessLookupError:
                    break  # child reaped: detach killed it
                time.sleep(0.02)
            else:
                raise AssertionError("orphan shard survived its controller")
        finally:
            daemon.stop()

    def test_stale_socket_file_is_replaced(self, sock_dir):
        path = sock_dir / "stale.sock"
        path.touch()  # a dead daemon's leftover
        daemon = WorkerDaemon(path)
        daemon.serve_in_thread()
        try:
            assert ping(path)["ok"]
        finally:
            daemon.stop()

    def test_live_socket_is_not_hijacked(self, sock_dir):
        daemon = _daemon(sock_dir, name="one.sock")
        try:
            with pytest.raises(DispatchError, match="already listens"):
                WorkerDaemon(daemon.socket_path).serve_forever()
        finally:
            daemon.stop()

    def test_repro_argv_tail(self):
        assert repro_argv_tail(
            ["/usr/bin/python3", "-m", "repro", "figure2", "--m", "2"]
        ) == ["figure2", "--m", "2"]
        assert repro_argv_tail(["sleep", "60"]) is None
        assert repro_argv_tail([sys.executable, "-c", "pass"]) is None

    def test_daemon_rejects_overlong_socket_path(self):
        with pytest.raises(DispatchError, match="too long for AF_UNIX"):
            WorkerDaemon(Path("/tmp") / ("x" * 200 + ".sock"))

    def test_client_rejects_overlong_socket_path(self):
        # Satellite regression: the client used to defer to connect(),
        # which surfaces a raw OSError from deep inside the backend
        # instead of the actionable DispatchError the daemon side gives.
        from repro.engine.daemon import DaemonClient

        with pytest.raises(DispatchError, match="too long for AF_UNIX"):
            DaemonClient(Path("/tmp") / ("x" * 200 + ".sock"))


class TestDaemonBackend:
    def test_launch_poll_and_log(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            log = sock_dir / "job.log"
            with DaemonBackend([daemon.socket_path]) as backend:
                assert backend.slots == 1
                handle = backend.launch(
                    [sys.executable, "-c", "print('via daemon')"], log
                )
                deadline = time.monotonic() + 30.0
                while backend.poll(handle) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                assert backend.poll(handle) == 0
            assert "via daemon" in log.read_text()
        finally:
            daemon.stop()

    def test_slots_sum_capacities(self, sock_dir):
        daemons = [
            _daemon(sock_dir, name=f"w{i}.sock", capacity=2) for i in range(2)
        ]
        try:
            with DaemonBackend([d.socket_path for d in daemons]) as backend:
                assert backend.slots == 4
        finally:
            for daemon in daemons:
                daemon.stop()

    def test_capacity_limit_caps_packing(self, sock_dir):
        # Satellite (--daemon-capacity): the backend may hold back
        # slots below what daemons declare.
        daemon = _daemon(sock_dir, capacity=3)
        try:
            with DaemonBackend(
                [daemon.socket_path], capacity_limit=1
            ) as backend:
                assert backend.slots == 1
                handle = backend.launch(
                    [sys.executable, "-c", "import time; time.sleep(600)"],
                    sock_dir / "a.log",
                )
                # The daemon would accept more; the backend must not.
                with pytest.raises(DispatchError, match="no live daemon"):
                    backend.launch(
                        [sys.executable, "-c", "print()"], sock_dir / "b.log"
                    )
                backend.cancel(handle)
            with pytest.raises(DispatchError):
                DaemonBackend([daemon.socket_path], capacity_limit=0)
            # The daemon releases the previous controller's claim
            # asynchronously on disconnect; retry the re-attach briefly.
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    made = make_backend(
                        "daemon", sockets=[daemon.socket_path],
                        daemon_capacity=2,
                    )
                    break
                except DispatchError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.02)
            assert isinstance(made, DaemonBackend)
            assert made.slots == 2
            made.close()
            with pytest.raises(DispatchError):
                make_backend("local", daemon_capacity=2)
        finally:
            daemon.stop()

    def test_capacity_two_daemon_packs_two_shards(self, sock_dir):
        # Satellite, end to end: one capacity-2 daemon hosts a whole
        # 2-shard orchestration — both shard jobs packed concurrently
        # onto the one socket — and the merged result is bit-identical.
        import dataclasses
        import warnings

        from repro.engine.orchestrator import Orchestrator, plan_figure2
        from repro.experiments.figure2 import run_figure2

        kwargs = dict(m=2, n_tasksets=6, seed=11, step=0.5)
        daemon = _daemon(sock_dir, capacity=2)

        class PackingProbe(DaemonBackend):
            """Records how many jobs were in flight per daemon at once."""

            peak = 0

            def launch(self, argv, log_path, env=None):
                handle = super().launch(argv, log_path, env=env)
                in_flight = max(
                    len(active) for active in self._active.values()
                )
                PackingProbe.peak = max(PackingProbe.peak, in_flight)
                return handle

        try:
            plan = plan_figure2(**kwargs)
            with PackingProbe([daemon.socket_path]) as backend:
                assert backend.slots == 2
                outcome = Orchestrator(
                    plan, sock_dir / "orch", backend=backend,
                    poll_interval=0.05,
                ).run()
            # Default partition: one shard per slot = 2 shards, both
            # packed concurrently onto the one daemon socket.
            assert len(outcome.attempts) == 2
            assert PackingProbe.peak == 2
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                reference = run_figure2(**kwargs)
            strip = lambda r: dataclasses.replace(r, elapsed_seconds=0.0)  # noqa: E731
            assert strip(outcome.result) == strip(reference)
        finally:
            daemon.stop()

    def test_cancel(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            with DaemonBackend([daemon.socket_path]) as backend:
                handle = backend.launch(
                    [sys.executable, "-c", "import time; time.sleep(600)"],
                    sock_dir / "job.log",
                )
                assert backend.poll(handle) is None
                backend.cancel(handle)
                assert backend.poll(handle) is not None
        finally:
            daemon.stop()

    def test_foreign_handle_rejected(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            with DaemonBackend([daemon.socket_path]) as backend:
                with pytest.raises(DispatchError):
                    backend.poll("nope")
        finally:
            daemon.stop()

    def test_daemon_death_is_heartbeat_loss(self, sock_dir):
        # Satellite: daemon killed mid-shard -> failed handle, slots
        # shrink, and a fresh launch fails over to the survivor.
        daemons = [_daemon(sock_dir, name=f"w{i}.sock") for i in range(2)]
        try:
            with DaemonBackend([d.socket_path for d in daemons]) as backend:
                handle = backend.launch(
                    [sys.executable, "-c", "import time; time.sleep(600)"],
                    sock_dir / "a.log",
                )
                assert backend.poll(handle) is None
                daemons[0].stop()  # SIGKILL-equivalent: socket goes dead
                deadline = time.monotonic() + 30.0
                while backend.poll(handle) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
                assert backend.poll(handle) == DAEMON_LOST_EXIT
                assert backend.slots == 1
                retry = backend.launch(
                    [sys.executable, "-c", "print('survivor')"],
                    sock_dir / "b.log",
                )
                while backend.poll(retry) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                assert backend.poll(retry) == 0
        finally:
            for daemon in daemons:
                daemon.stop()

    def test_all_daemons_dead_launch_raises(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            with DaemonBackend([daemon.socket_path]) as backend:
                daemon.stop()
                handle = backend.launch(
                    [sys.executable, "-c", "print('x')"], sock_dir / "a.log"
                )
                # The submit may have raced the shutdown; either the
                # launch already failed over to nothing (DispatchError)
                # or the handle reports the lost daemon.
                deadline = time.monotonic() + 30.0
                while backend.poll(handle) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                with pytest.raises(DispatchError, match="no live daemon"):
                    backend.launch(
                        [sys.executable, "-c", "print('x')"],
                        sock_dir / "b.log",
                    )
        except DispatchError:
            pass  # the first launch itself may already see the death
        finally:
            daemon.stop()

    def test_backend_needs_a_live_daemon(self, sock_dir):
        with pytest.raises(DispatchError, match="no daemon listening"):
            DaemonBackend([sock_dir / "absent.sock"])

    def test_two_backends_refuse_one_socket(self, sock_dir):
        # Satellite: two orchestrators must not share a daemon.
        daemon = _daemon(sock_dir)
        try:
            with DaemonBackend([daemon.socket_path]):
                with pytest.raises(DispatchError, match="already has a controller"):
                    DaemonBackend([daemon.socket_path])
        finally:
            daemon.stop()

    def test_make_backend_daemon_kind(self, sock_dir):
        daemon = _daemon(sock_dir)
        try:
            backend = make_backend("daemon", sockets=[daemon.socket_path])
            assert isinstance(backend, DaemonBackend)
            backend.close()
            with pytest.raises(DispatchError):
                make_backend("daemon")  # no sockets
            with pytest.raises(DispatchError):
                make_backend("local", sockets=[daemon.socket_path])
            with pytest.raises(DispatchError):
                make_backend(
                    "daemon",
                    sockets=[daemon.socket_path],
                    template=["sh", "-c", "{command}"],
                )
        finally:
            daemon.stop()


class TestDaemonProcess:
    """The real thing: a sweep-daemon subprocess, killed with SIGKILL."""

    def _spawn(self, socket_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep-daemon",
             "--socket", str(socket_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        wait_for_daemon(socket_path, timeout=60.0)
        return proc

    def test_daemon_process_runs_repro_work_orders(self, sock_dir):
        proc = self._spawn(sock_dir / "d.sock")
        try:
            log = sock_dir / "job.log"
            with DaemonBackend([sock_dir / "d.sock"]) as backend:
                handle = backend.launch(
                    [sys.executable, "-m", "repro", "figure1"], log
                )
                deadline = time.monotonic() + 60.0
                while backend.poll(handle) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
                assert backend.poll(handle) == 0
            assert "Table I" in log.read_text()
        finally:
            proc.kill()
            proc.wait()

    def test_sweep_run_job_via_daemon_elastic_matches_legacy(self, sock_dir):
        # Acceptance: a declarative job executed as `sweep-run --job
        # ... --backend daemon --elastic` reproduces the legacy
        # subcommand's CSV byte-for-byte.
        import json

        from repro.cli import main

        job_file = sock_dir / "job.json"
        job_file.write_text(json.dumps({
            "version": 1,
            "workload": {"kind": "figure2", "m": 2, "n_tasksets": 6,
                         "seed": 11, "step": 0.5},
        }))
        daemons = [
            _daemon(sock_dir, name=f"w{i}.sock", capacity=1) for i in range(2)
        ]
        try:
            legacy_csv = sock_dir / "legacy.csv"
            assert main([
                "figure2", "--m", "2", "--tasksets", "6", "--seed", "11",
                "--step", "0.5", "--csv", str(legacy_csv),
            ]) == 0
            job_csv = sock_dir / "job.csv"
            assert main([
                "sweep-run", "--job", str(job_file),
                "--backend", "daemon",
                "--daemon-socket", str(daemons[0].socket_path),
                "--daemon-socket", str(daemons[1].socket_path),
                "--elastic", "--out", str(sock_dir / "orch"),
                "--csv", str(job_csv), "--quiet",
            ]) == 0
            assert job_csv.read_bytes() == legacy_csv.read_bytes()
        finally:
            for daemon in daemons:
                daemon.stop()

    def test_sigkilled_daemon_mid_shard_heals_via_orchestrator(self, sock_dir):
        # Satellite, end to end: SIGKILL a daemon process while its
        # shard runs; the orchestrator sees the heartbeat loss, retries
        # on a surviving daemon, and the result is still bit-identical.
        import dataclasses

        from repro.engine.orchestrator import Orchestrator, plan_figure2
        from repro.experiments.figure2 import run_figure2

        kwargs = dict(m=2, n_tasksets=6, seed=11, step=0.5)
        procs = [self._spawn(sock_dir / f"d{i}.sock") for i in range(2)]
        victim = procs[0]
        try:
            plan = plan_figure2(**kwargs)
            sockets = [sock_dir / f"d{i}.sock" for i in range(2)]

            killed = {"done": False}

            def progress(view):
                # Kill the first daemon once any stream shows life.
                if not killed["done"] and any(
                    s.state != "waiting" for s in view.shards
                ):
                    victim.kill()
                    killed["done"] = True

            with DaemonBackend(sockets) as backend:
                outcome = Orchestrator(
                    plan, sock_dir / "orch", backend=backend, retries=3,
                    poll_interval=0.05, progress=progress,
                ).run()
            assert killed["done"]
            strip = lambda r: dataclasses.replace(r, elapsed_seconds=0.0)  # noqa: E731
            assert strip(outcome.result) == strip(run_figure2(**kwargs))
        finally:
            for proc in procs:
                proc.kill()
                proc.wait()
