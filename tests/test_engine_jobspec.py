"""The declarative JobSpec: round-trips, strictness, overrides.

The job schema is the contract every tier speaks (CLI flags, job
files, orchestrator work orders, daemon submits), so these tests pin
it hard: a golden checked-in fixture, exact ``from_json(to_json(s)) ==
s`` round-trips (hypothesis-generated), strict unknown-key /
version-skew / kind-mismatch rejection, and override layering.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.engine.jobspec import (
    JOBSPEC_VERSION,
    ExecutionPolicy,
    JobSpec,
    Workload,
    load_job,
    parse_set_override,
    save_job,
)
from repro.engine.shard import ShardSpec
from repro.exceptions import AnalysisError, JobSpecError

from tests.strategies import job_specs

EXAMPLES = Path(__file__).resolve().parents[1] / "examples" / "jobs"


def _figure2_job(**execution) -> JobSpec:
    return JobSpec(
        workload=Workload(kind="figure2", m=2, n_tasksets=4, seed=3, step=1.0),
        execution=ExecutionPolicy(**execution),
    )


class TestGoldenFixtures:
    """The checked-in example jobs are the schema's reference forms."""

    @pytest.mark.parametrize("name, kind", [
        ("figure2-small.json", "figure2"),
        ("group2-small.json", "group2"),
        ("splitsweep-small.json", "splitsweep"),
        ("sensitivity-small.json", "sensitivity"),
        ("simulate-small.json", "simulate"),
        ("timing-small.json", "timing"),
    ])
    def test_fixture_loads_and_round_trips(self, name, kind):
        job = load_job(EXAMPLES / name)
        assert job.kind == kind
        assert JobSpec.from_json(job.to_json()) == job
        # The serialised dict matches the file byte-for-byte modulo
        # formatting: the fixture *is* the canonical JSON form.
        assert job.to_json_dict() == json.loads((EXAMPLES / name).read_text())

    def test_figure2_fixture_matches_legacy_spec_identity(self):
        from repro.experiments.figure2 import figure2_spec

        job = load_job(EXAMPLES / "figure2-small.json")
        spec = figure2_spec(m=2, n_tasksets=20, seed=2016, step=0.25)
        assert job.fingerprint() == spec.fingerprint()
        assert job.total_items == spec.total_items


class TestRoundTrip:
    def test_simple_round_trip(self):
        job = _figure2_job(jobs=4, checkpoint="ckpt.json",
                           shard=ShardSpec(1, 3))
        assert JobSpec.from_json(job.to_json()) == job

    def test_file_round_trip(self, tmp_path):
        job = _figure2_job(stream="s.jsonl")
        save_job(tmp_path / "job.json", job)
        assert load_job(tmp_path / "job.json") == job

    @settings(max_examples=60, deadline=None)
    @given(job=job_specs())
    def test_random_specs_round_trip(self, job):
        assert JobSpec.from_json(job.to_json()) == job
        assert JobSpec.from_json(job.to_json(indent=None)) == job

    def test_paths_normalise_to_strings(self, tmp_path):
        job = _figure2_job(checkpoint=tmp_path / "c.json")
        assert isinstance(job.execution.checkpoint, str)
        assert JobSpec.from_json(job.to_json()) == job

    def test_splitsweep_thresholds_normalise_descending(self):
        a = Workload(kind="splitsweep", thresholds=(25.0, 100.0))
        b = Workload(kind="splitsweep", thresholds=(100.0, 25.0))
        assert a == b
        assert a.thresholds == (100.0, 25.0)


class TestStrictness:
    def test_unknown_top_level_key_rejected(self):
        payload = _figure2_job().to_json_dict()
        payload["notes"] = "hi"
        with pytest.raises(JobSpecError, match="notes"):
            JobSpec.from_json_dict(payload)

    def test_unknown_workload_key_rejected(self):
        payload = _figure2_job().to_json_dict()
        payload["workload"]["cores"] = 8
        with pytest.raises(JobSpecError, match="cores"):
            JobSpec.from_json_dict(payload)

    def test_unknown_execution_key_rejected(self):
        payload = _figure2_job().to_json_dict()
        payload["execution"]["nice"] = 10
        with pytest.raises(JobSpecError, match="nice"):
            JobSpec.from_json_dict(payload)

    def test_key_of_other_kind_rejected(self):
        # 'thresholds' is a real field — but not a figure2 field.
        payload = _figure2_job().to_json_dict()
        payload["workload"]["thresholds"] = [10.0]
        with pytest.raises(JobSpecError, match="thresholds"):
            JobSpec.from_json_dict(payload)

    def test_version_skew_rejected(self):
        payload = _figure2_job().to_json_dict()
        payload["version"] = JOBSPEC_VERSION + 1
        with pytest.raises(JobSpecError, match="version"):
            JobSpec.from_json_dict(payload)
        payload.pop("version")
        with pytest.raises(JobSpecError, match="version"):
            JobSpec.from_json_dict(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobSpecError, match="kind"):
            JobSpec.from_json_dict({
                "version": JOBSPEC_VERSION,
                "workload": {"kind": "figure3"},
            })
        with pytest.raises(JobSpecError):
            Workload(kind="figure3")

    def test_not_json_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_json("{ truncated")
        with pytest.raises(JobSpecError):
            JobSpec.from_json("[1, 2]")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(JobSpecError, match="does not exist"):
            load_job(tmp_path / "nope.json")

    def test_splitsweep_rejects_sweep_only_policy(self):
        workload = Workload(kind="splitsweep", m=2, n_tasksets=3)
        for field in ("checkpoint", "chunk_size", "items"):
            value = {"checkpoint": "c.json", "chunk_size": 4,
                     "items": (0, 1)}[field]
            with pytest.raises(JobSpecError, match=field):
                JobSpec(workload=workload,
                        execution=ExecutionPolicy(**{field: value}))

    def test_group2_rejects_solver_knobs(self):
        with pytest.raises(JobSpecError):
            Workload(kind="group2", mu_method="ilp")

    def test_programmatic_cross_kind_fields_rejected(self):
        # Strictness is symmetric: constructing a Workload with a
        # field of another kind fails exactly like parsing one would.
        with pytest.raises(JobSpecError, match="utilization"):
            Workload(kind="figure2", utilization=3.5)
        with pytest.raises(JobSpecError, match="mu_method"):
            Workload(kind="splitsweep", mu_method="ilp")
        with pytest.raises(JobSpecError, match="step"):
            Workload(kind="splitsweep", step=0.5)

    def test_validation_errors(self):
        with pytest.raises(JobSpecError):
            Workload(kind="figure2", m=0)
        with pytest.raises(JobSpecError):
            Workload(kind="figure2", n_tasksets=0)
        with pytest.raises(JobSpecError):
            Workload(kind="figure2", step=-1.0)
        with pytest.raises(JobSpecError):
            Workload(kind="figure2", mu_method="guess")
        with pytest.raises(JobSpecError):
            Workload(kind="splitsweep", thresholds=())
        with pytest.raises(JobSpecError):
            ExecutionPolicy(jobs=0)
        with pytest.raises(JobSpecError):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(JobSpecError):
            ExecutionPolicy(executor="gpu")

    def test_jobspec_error_is_analysis_error(self):
        # Callers catching the historical broad class keep working.
        with pytest.raises(AnalysisError):
            Workload(kind="figure2", m=0)


class TestOverrides:
    def test_dotted_overrides(self):
        job = _figure2_job()
        patched = job.with_overrides(
            {"workload.m": 8, "execution.jobs": 4}
        )
        assert patched.workload.m == 8
        assert patched.execution.jobs == 4
        # The original is untouched (immutability).
        assert job.workload.m == 2

    def test_bare_names_resolve_to_their_section(self):
        patched = _figure2_job().with_overrides({"m": 8, "jobs": 4})
        assert patched.workload.m == 8
        assert patched.execution.jobs == 4

    def test_string_values_coerce(self):
        patched = _figure2_job().with_overrides({
            "workload.m": "8",
            "workload.step": "0.5",
            "execution.shard": "2/4",
            "execution.items": "9,1,5",
            "execution.chunk_size": "none",
        })
        assert patched.workload.m == 8
        assert patched.workload.step == 0.5
        assert patched.execution.shard == ShardSpec(1, 4)
        assert patched.execution.items == (1, 5, 9)
        assert patched.execution.chunk_size is None

    def test_override_round_trips(self):
        patched = _figure2_job().with_overrides({"workload.seed": 7})
        assert JobSpec.from_json(patched.to_json()) == patched

    def test_unknown_override_rejected(self):
        with pytest.raises(JobSpecError, match="no job spec field"):
            _figure2_job().with_overrides({"turbo": "on"})
        with pytest.raises(JobSpecError, match="no field"):
            _figure2_job().with_overrides({"workload.turbo": "on"})
        with pytest.raises(JobSpecError, match="section"):
            _figure2_job().with_overrides({"deploy.m": "3"})

    def test_override_still_validated(self):
        with pytest.raises(JobSpecError):
            _figure2_job().with_overrides({"workload.m": "0"})

    def test_parse_set_override(self):
        assert parse_set_override("workload.m=8") == ("workload.m", "8")
        assert parse_set_override("stream=a=b.jsonl") == ("stream", "a=b.jsonl")
        with pytest.raises(JobSpecError):
            parse_set_override("no-equals-sign")
        with pytest.raises(JobSpecError):
            parse_set_override("=value")


class TestWorkloadSemantics:
    def test_defaults_resolve_per_kind(self):
        assert Workload(kind="figure2").n_tasksets == 300
        assert Workload(kind="group2").n_tasksets == 300
        assert Workload(kind="splitsweep").n_tasksets == 30
        assert Workload(kind="splitsweep").thresholds == (
            1000.0, 100.0, 50.0, 25.0, 10.0, 5.0,
        )

    def test_fingerprints_match_experiment_specs(self):
        from repro.core.analyzer import AnalysisMethod
        from repro.experiments.group2 import group2_spec
        from repro.experiments.splitsweep import split_sweep_fingerprint
        from repro.generator.profiles import GROUP1

        workload = Workload(kind="group2", m=2, n_tasksets=4, seed=11, step=0.5)
        assert workload.fingerprint() == group2_spec(
            m=2, n_tasksets=4, seed=11, step=0.5
        ).fingerprint()

        workload = Workload(
            kind="splitsweep", m=2, utilization=1.2,
            thresholds=(100.0, 25.0), n_tasksets=5, seed=9,
        )
        assert workload.fingerprint() == split_sweep_fingerprint(
            2, 1.2, (100.0, 25.0), 5, 9, GROUP1,
            AnalysisMethod.LP_ILP, 0.0,
        )

    def test_fingerprint_ignores_execution(self):
        job = _figure2_job()
        assert job.fingerprint() == replace(
            job, execution=ExecutionPolicy(jobs=16, shard=ShardSpec(0, 2))
        ).fingerprint()

    def test_splitsweep_has_no_sweep_spec(self):
        with pytest.raises(JobSpecError):
            Workload(kind="splitsweep").sweep_spec()

    def test_for_worker_strips_placement(self):
        job = _figure2_job(
            jobs=3, checkpoint="c.json", stream="s.jsonl",
            shard_out="a.json", shard=ShardSpec(0, 2), items=(0, 2),
        )
        worker = job.for_worker()
        assert worker.execution.jobs == 3
        assert worker.execution.checkpoint is None
        assert worker.execution.stream is None
        assert worker.execution.shard_out is None
        assert worker.execution.shard is None
        assert worker.execution.items is None


class TestPlacement:
    """Cache-aware routing is a pure dispatch policy on the JobSpec."""

    def test_round_trips(self):
        job = _figure2_job(placement="cache-aware")
        assert JobSpec.from_json(job.to_json()) == job
        assert job.to_json_dict()["execution"]["placement"] == "cache-aware"

    def test_absent_placement_defaults_to_strided(self):
        payload = _figure2_job().to_json_dict()
        del payload["execution"]["placement"]
        assert JobSpec.from_json_dict(payload).execution.placement == "strided"

    def test_unknown_placement_rejected(self):
        with pytest.raises(JobSpecError, match="placement"):
            _figure2_job(placement="affine")

    def test_cache_aware_needs_a_cache_backed_kind(self):
        workload = Workload(kind="splitsweep", m=2, n_tasksets=3)
        with pytest.raises(JobSpecError, match="cache-aware"):
            JobSpec(workload=workload,
                    execution=ExecutionPolicy(placement="cache-aware"))

    def test_for_worker_resets_placement(self):
        job = _figure2_job(placement="cache-aware")
        assert job.for_worker().execution.placement == "strided"

    def test_fingerprint_ignores_placement(self):
        assert (_figure2_job(placement="cache-aware").fingerprint()
                == _figure2_job().fingerprint())
