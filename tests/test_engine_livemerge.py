"""Tail-follow stream reading and the cluster-wide live merger.

The live merger consumes shard streams *while their writers are still
appending*.  These tests pin the concurrency semantics that makes that
safe: whole lines only, torn tails deferred (then delivered once the
writer finishes the line), truncation (shard restart) detected, and
:func:`repro.engine.streaming.read_stream` staying correct when invoked
mid-write by an unrelated process (``sweep-status`` on a live run).
"""

import json
import threading
import time

import pytest

from repro.engine import LiveMerger, StreamTail, StreamWriter, read_stream
from repro.engine.checkpoint import ChunkRecord
from repro.exceptions import AnalysisError, ShardError

HEADER = {
    "type": "header",
    "version": 1,
    "kind": "sweep",
    "fingerprint": "f" * 64,
    "shard": None,
    "total_items": 8,
    "meta": {},
}


def _chunk_line(start, stop, counts=None, **extra):
    payload = {
        "type": "chunk",
        "start": start,
        "stop": stop,
        "counts": counts or {},
        "replayed": False,
    }
    payload.update(extra)
    return json.dumps(payload) + "\n"


def _append(path, text):
    with path.open("a") as handle:
        handle.write(text)
        handle.flush()


class TestStreamTail:
    def test_missing_file_is_no_lines(self, tmp_path):
        tail = StreamTail(tmp_path / "nope.jsonl")
        assert tail.poll() == []

    def test_incremental_growth(self, tmp_path):
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        _append(path, json.dumps(HEADER) + "\n")
        assert [l["type"] for l in tail.poll()] == ["header"]
        assert tail.poll() == []  # nothing new
        _append(path, _chunk_line(0, 2) + _chunk_line(2, 3))
        assert [l["type"] for l in tail.poll()] == ["chunk", "chunk"]

    def test_torn_tail_then_continued_write(self, tmp_path):
        # The exact hazard the live merger faces: the writer has flushed
        # only the first half of a line.  The tail must neither deliver
        # the fragment nor lose it once the newline lands.
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        whole = _chunk_line(0, 4, {"0": {"LP-ILP": 2}})
        _append(path, json.dumps(HEADER) + "\n" + whole[:10])
        first = tail.poll()
        assert [l["type"] for l in first] == ["header"]
        assert tail.poll() == []  # torn tail stays pending
        _append(path, whole[10:])
        (line,) = tail.poll()
        assert line["type"] == "chunk"
        assert line["counts"] == {"0": {"LP-ILP": 2}}

    def test_truncation_detected_and_reread(self, tmp_path):
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        _append(path, json.dumps(HEADER) + "\n" + _chunk_line(0, 5))
        assert len(tail.poll()) == 2
        # A retried shard reopens its stream with "w": shorter file.
        path.write_text(json.dumps(HEADER) + "\n")
        lines = tail.poll()
        assert tail.truncations == 1
        assert [l["type"] for l in lines] == ["header"]

    def test_corrupt_complete_line_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(AnalysisError):
            StreamTail(path).poll()

    def test_unlinked_stream_counts_as_restart(self, tmp_path):
        # The orchestrator unlinks a relaunched shard's stream before
        # the new attempt starts; an external tail (a second
        # sweep-status process, a monitor) must read that as a restart,
        # not silently keep its stale offset.
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        _append(path, json.dumps(HEADER) + "\n" + _chunk_line(0, 5))
        assert len(tail.poll()) == 2
        path.unlink()
        assert tail.poll() == []
        assert tail.truncations == 1
        _append(path, json.dumps(HEADER) + "\n" + _chunk_line(0, 2))
        lines = tail.poll()
        assert [l["type"] for l in lines] == ["header", "chunk"]
        assert lines[1]["stop"] == 2

    def test_truncate_and_regrow_past_offset_resets_cleanly(self, tmp_path):
        # Satellite regression: between two polls the stream is
        # truncated AND rewritten to a size at or beyond the consumed
        # offset.  The size check alone cannot see that; the tail must
        # still reset instead of parsing the new file from a stale
        # mid-line offset (folding garbage into the cluster view or
        # raising a bogus corruption error).
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        short = json.dumps(HEADER) + "\n" + _chunk_line(0, 1)
        _append(path, short)
        assert len(tail.poll()) == 2  # offset now == len(short)
        # Rewrite with *longer* content whose bytes at the old offset
        # are mid-line.
        rewritten = (
            json.dumps(HEADER) + "\n"
            + _chunk_line(0, 3, {"0": {"LP-ILP": 99}})
            + _chunk_line(3, 6)
        )
        assert len(rewritten) > len(short)
        path.write_text(rewritten)
        lines = tail.poll()
        assert tail.truncations == 1
        assert [l["type"] for l in lines] == ["header", "chunk", "chunk"]
        assert lines[1]["counts"] == {"0": {"LP-ILP": 99}}

    def test_truncate_and_regrow_to_exact_offset_is_restart(self, tmp_path):
        # Satellite regression: the rewrite regrows the file to
        # *exactly* the consumed offset.  ``size == offset`` used to
        # short-circuit as "clean, fully-consumed tail" before the
        # witness-byte comparison ran, so the restart went unreported
        # and the replacement stream's lines were silently swallowed.
        path = tmp_path / "s.jsonl"
        tail = StreamTail(path)
        consumed = json.dumps(HEADER) + "\n" + _chunk_line(0, 5)
        _append(path, consumed)
        assert len(tail.poll()) == 2
        # Same byte count, different final line (so the witness bytes
        # at the consumed offset differ): swap the chunk boundaries.
        rewritten = json.dumps(HEADER) + "\n" + _chunk_line(5, 0)
        assert len(rewritten) == len(consumed)
        assert rewritten != consumed
        path.write_text(rewritten)
        lines = tail.poll()
        assert tail.truncations == 1
        assert [l["type"] for l in lines] == ["header", "chunk"]
        assert lines[1]["start"] == 5
        # And a rewrite whose bytes happen to be identical is, by
        # definition, indistinguishable and must NOT count as restart.
        path.write_text(rewritten)
        assert tail.poll() == []
        assert tail.truncations == 1

    def test_concurrently_appending_writer(self, tmp_path):
        """A writer thread appends while the tail polls: every line
        arrives exactly once, whole, in order."""
        path = tmp_path / "s.jsonl"
        total = 40

        def writer():
            with path.open("w") as handle:
                handle.write(json.dumps(HEADER) + "\n")
                handle.flush()
                for index in range(total):
                    handle.write(_chunk_line(index, index + 1))
                    handle.flush()
                    time.sleep(0.001)

        thread = threading.Thread(target=writer)
        tail = StreamTail(path)
        seen = []
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while len(seen) < total + 1 and time.monotonic() < deadline:
                seen.extend(tail.poll())
        finally:
            thread.join()
        seen.extend(tail.poll())
        assert [l["type"] for l in seen] == ["header"] + ["chunk"] * total
        assert [l["start"] for l in seen[1:]] == list(range(total))


class TestReadStreamUnderConcurrentWriter:
    """Satellite: read_stream mid-write must see a valid prefix."""

    def test_read_stream_tolerates_torn_then_continued_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        torn = _chunk_line(4, 6)
        _append(
            path,
            json.dumps(HEADER) + "\n" + _chunk_line(0, 4) + torn[: len(torn) // 2],
        )
        dump = read_stream(path)  # a "sweep-status" of a live run
        assert not dump.complete
        assert [(r.start, r.stop) for r in dump.chunks] == [(0, 4)]
        # The writer finishes the torn line and the run completes.
        _append(
            path,
            torn[len(torn) // 2 :]
            + json.dumps(
                {"type": "summary", "done_items": 6, "elapsed_seconds": 0.5}
            )
            + "\n",
        )
        dump = read_stream(path)
        assert dump.complete
        assert [(r.start, r.stop) for r in dump.chunks] == [(0, 4), (4, 6)]

    def test_read_stream_while_writer_thread_appends(self, tmp_path):
        path = tmp_path / "s.jsonl"
        total = 25
        stop = threading.Event()

        def writer():
            with StreamWriter(path) as out:
                out.write_header(
                    kind="sweep", fingerprint="f" * 64, total_items=total, meta={}
                )
                for index in range(total):
                    out.write_chunk(
                        ChunkRecord(index, index + 1, {0: {"LP-ILP": 1}}),
                        elapsed_seconds=0.001,
                    )
                    time.sleep(0.001)
                out.write_summary(total, 1.0)
            stop.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            # Hammer read_stream concurrently: every call must parse a
            # valid prefix (monotonically growing, never an error).
            sizes = []
            while not stop.is_set():
                dump = read_stream(path) if path.exists() else None
                if dump is not None:
                    sizes.append(len(dump.chunks))
                time.sleep(0.002)
        finally:
            thread.join()
        final = read_stream(path)
        assert final.complete
        assert len(final.chunks) == total
        assert sizes == sorted(sizes), "observed chunk counts went backwards"


class TestLiveMerger:
    def _write_shard_stream(self, path, fingerprint, chunks, summary=False):
        with path.open("w") as handle:
            header = dict(HEADER, fingerprint=fingerprint)
            handle.write(json.dumps(header) + "\n")
            for start, stop, counts in chunks:
                handle.write(
                    _chunk_line(start, stop, counts, elapsed_seconds=0.01)
                )
            if summary:
                handle.write(
                    json.dumps(
                        {"type": "summary", "done_items": 0, "elapsed_seconds": 0}
                    )
                    + "\n"
                )

    def test_merges_partial_streams_incrementally(self, tmp_path):
        fp = "a" * 64
        merger = LiveMerger(total_items=8, fingerprint=fp)
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        merger.attach(0, s0)
        merger.attach(1, s1)

        view = merger.poll()
        assert view.done_items == 0 and not view.finished

        self._write_shard_stream(s0, fp, [(0, 2, {"0": {"LP-ILP": 1}})])
        view = merger.poll()
        assert view.done_items == 2
        assert view.counts == {0: {"LP-ILP": 1}}
        assert view.shards[0].state == "running"
        assert view.shards[1].state == "waiting"

        self._write_shard_stream(
            s1, fp, [(2, 5, {"0": {"LP-ILP": 2}, "1": {"LP-ILP": 1}})],
            summary=True,
        )
        view = merger.poll()
        assert view.done_items == 5
        assert view.counts == {0: {"LP-ILP": 3}, 1: {"LP-ILP": 1}}
        assert view.shards[1].state == "finished"
        assert view.fraction_done == pytest.approx(5 / 8)
        assert len(view.timings) == 2

    def test_shrunk_stream_detected_as_restart(self, tmp_path):
        fp = "a" * 64
        merger = LiveMerger(total_items=8, fingerprint=fp)
        path = tmp_path / "s0.jsonl"
        merger.attach(0, path)
        self._write_shard_stream(
            path, fp,
            [(0, 2, {"0": {"LP-ILP": 2}}), (2, 4, {"0": {"LP-ILP": 2}})],
        )
        assert merger.poll().done_items == 4
        # Retry truncates and rewrites a strictly shorter file.
        self._write_shard_stream(path, fp, [(0, 2, {})])
        view = merger.poll()
        assert view.done_items == 2
        assert view.counts == {}
        assert view.shards[0].restarts == 1

    def test_regrown_rewrite_detected_as_restart(self, tmp_path):
        # Satellite regression, merger level: a relaunched shard that
        # truncated and already rewrote a *longer* stream between polls
        # must reset that shard's contribution, not fold the new lines
        # on top of the stale ones (double counting) or die parsing
        # from a stale offset.
        fp = "a" * 64
        merger = LiveMerger(total_items=8, fingerprint=fp)
        path = tmp_path / "s0.jsonl"
        merger.attach(0, path)
        self._write_shard_stream(path, fp, [(0, 2, {"0": {"LP-ILP": 2}})])
        assert merger.poll().done_items == 2
        self._write_shard_stream(
            path, fp,
            [(0, 4, {"0": {"LP-ILP": 1}}), (4, 6, {"0": {"LP-ILP": 1}})],
        )
        view = merger.poll()
        assert view.shards[0].restarts == 1
        assert view.done_items == 6
        assert view.counts == {0: {"LP-ILP": 2}}

    def test_explicit_reset_discards_state(self, tmp_path):
        # The orchestrator's relaunch path: reset() must work even when
        # the rewritten stream is the same length or longer (the
        # size-shrink heuristic cannot see those).
        fp = "a" * 64
        merger = LiveMerger(total_items=8, fingerprint=fp)
        path = tmp_path / "s0.jsonl"
        merger.attach(0, path)
        self._write_shard_stream(path, fp, [(0, 4, {"0": {"LP-ILP": 4}})])
        assert merger.poll().done_items == 4
        path.unlink()
        merger.reset(0)
        self._write_shard_stream(path, fp, [(0, 2, {"0": {"LP-ILP": 2}})])
        view = merger.poll()
        assert view.done_items == 2
        assert view.counts == {0: {"LP-ILP": 2}}
        assert view.shards[0].restarts == 1

    def test_foreign_fingerprint_rejected(self, tmp_path):
        merger = LiveMerger(total_items=8, fingerprint="a" * 64)
        path = tmp_path / "s0.jsonl"
        merger.attach(0, path)
        self._write_shard_stream(path, "b" * 64, [])
        with pytest.raises(ShardError):
            merger.poll()

    def test_cache_counters_pool_across_shards(self, tmp_path):
        merger = LiveMerger(total_items=8)
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        merger.attach(0, s0)
        merger.attach(1, s1)
        with s0.open("w") as handle:
            handle.write(json.dumps(HEADER) + "\n")
            handle.write(_chunk_line(
                0, 2, cache={"hits": 1, "misses": 1, "swept": 2, "stale": 0}
            ))
        with s1.open("w") as handle:
            handle.write(json.dumps(HEADER) + "\n")
            # Old streams without the health keys still fold cleanly.
            handle.write(_chunk_line(2, 4, cache={"hits": 0, "misses": 2}))
            handle.write(_chunk_line(
                4, 5, cache={"hits": 1, "misses": 0, "swept": 1, "stale": 3}
            ))
        view = merger.poll()
        assert (view.cache_hits, view.cache_misses) == (2, 3)
        assert (view.cache_swept, view.cache_stale) == (3, 3)
        assert view.shard(0).cache_swept == 2
        assert view.shard(1).cache_stale == 3
        # A retry discards the shard's folded telemetry with the rest.
        merger.reset(0)
        view = merger.view()
        assert (view.cache_swept, view.cache_stale) == (1, 3)

    def test_item_lines_count_as_progress(self, tmp_path):
        # Split-sweep streams emit per-item lines, not chunk lines.
        merger = LiveMerger(total_items=4)
        path = tmp_path / "s0.jsonl"
        merger.attach(0, path)
        with path.open("w") as handle:
            handle.write(json.dumps(dict(HEADER, kind="splitsweep")) + "\n")
            handle.write(json.dumps({"type": "item", "item": 0, "rows": []}) + "\n")
            handle.write(json.dumps({"type": "item", "item": 2, "rows": []}) + "\n")
        view = merger.poll()
        assert view.done_items == 2
        assert view.counts == {}
