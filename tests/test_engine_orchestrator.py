"""Dispatch backends and the orchestrator tier.

Unit tests for backends and plans, plus integration tests that really
dispatch ``python -m repro`` shard subprocesses (kept tiny: m=2, a
handful of task-sets).  The orchestrator's bit-identical contract with
the serial run lives in ``tests/test_engine_conformance.py``.
"""

import json
import sys
import time

import pytest

from repro.engine.backends import (
    LocalBackend,
    TemplateBackend,
    make_backend,
)
from repro.engine.orchestrator import (
    MANIFEST_NAME,
    Orchestrator,
    load_manifest,
    plan_figure2,
    plan_group2,
    plan_splitsweep,
    read_status,
)
from repro.exceptions import DispatchError, OrchestrationError
from repro.experiments.figure2 import figure2_spec
from repro.experiments.group2 import group2_spec


def _wait_exit(backend, handle, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code = backend.poll(handle)
        if code is not None:
            return code
        time.sleep(0.02)
    raise AssertionError("backend job did not exit in time")


class TestLocalBackend:
    def test_launch_poll_and_log(self, tmp_path):
        log = tmp_path / "job.log"
        with LocalBackend(slots=2) as backend:
            handle = backend.launch(
                [sys.executable, "-c", "print('hello from shard')"], log
            )
            assert _wait_exit(backend, handle) == 0
        assert "hello from shard" in log.read_text()

    def test_nonzero_exit_code_reported(self, tmp_path):
        with LocalBackend() as backend:
            handle = backend.launch(
                [sys.executable, "-c", "import sys; sys.exit(3)"],
                tmp_path / "job.log",
            )
            assert _wait_exit(backend, handle) == 3

    def test_cancel_kills_running_job(self, tmp_path):
        with LocalBackend() as backend:
            handle = backend.launch(
                [sys.executable, "-c", "import time; time.sleep(60)"],
                tmp_path / "job.log",
            )
            assert backend.poll(handle) is None
            backend.cancel(handle)
            assert backend.poll(handle) is not None

    def test_close_reaps_everything(self, tmp_path):
        backend = LocalBackend()
        handle = backend.launch(
            [sys.executable, "-c", "import time; time.sleep(60)"],
            tmp_path / "job.log",
        )
        backend.close()
        assert backend.poll(handle) is not None

    def test_launch_failure_raises_dispatch_error(self, tmp_path):
        with LocalBackend() as backend:
            with pytest.raises(DispatchError):
                backend.launch(
                    ["/nonexistent/binary/for/sure"], tmp_path / "job.log"
                )

    def test_log_appends_across_attempts(self, tmp_path):
        log = tmp_path / "job.log"
        with LocalBackend() as backend:
            for word in ("first", "second"):
                handle = backend.launch(
                    [sys.executable, "-c", f"print('{word}')"], log
                )
                _wait_exit(backend, handle)
        text = log.read_text()
        assert "first" in text and "second" in text

    def test_bad_slots_rejected(self):
        with pytest.raises(DispatchError):
            LocalBackend(slots=0)

    def test_foreign_handle_rejected(self):
        with LocalBackend() as backend:
            with pytest.raises(DispatchError):
                backend.poll("not a handle")


class TestTemplateBackend:
    def test_template_requires_placeholder(self):
        with pytest.raises(DispatchError):
            TemplateBackend(["ssh", "worker1"])

    def test_render_substitutes_quoted_command(self):
        backend = TemplateBackend(["ssh", "worker1", "{command}"])
        rendered = backend.render(["python", "-m", "repro", "--label", "a b"])
        assert rendered[:2] == ["ssh", "worker1"]
        assert rendered[2] == "python -m repro --label 'a b'"

    def test_embedded_placeholder(self):
        backend = TemplateBackend(["sh", "-c", "nice -n 10 {command}"])
        assert backend.render(["echo", "hi"]) == [
            "sh", "-c", "nice -n 10 echo hi",
        ]

    def test_forwarded_env_travels_inside_the_command(self, tmp_path):
        # ssh/queue shells don't inherit the local client's env, so the
        # PYTHONPATH guarantee must ride inside the command string.
        backend = TemplateBackend(["ssh", "worker1", "{command}"])
        rendered = backend.render(
            ["python", "-m", "repro"], env={"PYTHONPATH": "/repo/src", "HOME": "/x"}
        )
        assert rendered[2] == "env PYTHONPATH=/repo/src python -m repro"

    def test_forwarded_env_really_reaches_the_child(self, tmp_path):
        log = tmp_path / "job.log"
        with TemplateBackend(["sh", "-c", "{command}"]) as backend:
            handle = backend.launch(
                [sys.executable, "-c",
                 "import os; print('MARK=' + os.environ.get('PYTHONPATH', ''))"],
                log,
                env={"PATH": "/usr/bin:/bin", "PYTHONPATH": "/from/template"},
            )
            assert _wait_exit(backend, handle) == 0
        assert "MARK=/from/template" in log.read_text()

    @pytest.mark.parametrize("pythonpath", [
        "/repo with spaces/src",            # spaces must survive the shell
        "/repo/src:",                       # trailing : (empty segment)
        ":/repo/src",                       # leading : (empty segment)
        "/a b/src::/c d/src",               # both hazards at once
        "/quo'te/src",                      # a quote in the path itself
    ])
    def test_forwarded_env_survives_shell_byte_identical(
        self, tmp_path, pythonpath
    ):
        # The satellite regression: PYTHONPATH values with spaces or
        # ':'-adjacent empty segments must arrive in the (template-side)
        # shell's child byte-identical, not re-split into extra argv
        # words or stripped of their empty segments.
        log = tmp_path / "job.log"
        with TemplateBackend(["sh", "-c", "{command}"]) as backend:
            handle = backend.launch(
                [sys.executable, "-c",
                 "import os; print('MARK=[' + os.environ['PYTHONPATH'] + ']')"],
                log,
                env={"PATH": "/usr/bin:/bin", "PYTHONPATH": pythonpath},
            )
            assert _wait_exit(backend, handle) == 0
        assert f"MARK=[{pythonpath}]" in log.read_text()

    def test_rendered_argv_words_survive_shell_byte_identical(self, tmp_path):
        # Same hazard on the command words themselves: an argument with
        # spaces and quotes must come out of the remote shell as one
        # argv element.
        log = tmp_path / "job.log"
        tricky = "a b 'c' \"d\" $HOME ;e"
        with TemplateBackend(["sh", "-c", "{command}"]) as backend:
            handle = backend.launch(
                [sys.executable, "-c", "import sys; print(sys.argv[1])",
                 tricky],
                log,
            )
            assert _wait_exit(backend, handle) == 0
        assert tricky in log.read_text()

    def test_render_quotes_each_piece(self):
        backend = TemplateBackend(["ssh", "worker1", "{command}"])
        rendered = backend.render(
            ["python", "-m", "repro"],
            env={"PYTHONPATH": "/my repo/src:"},
        )
        assert rendered[2] == "env 'PYTHONPATH=/my repo/src:' python -m repro"

    def test_template_dispatch_really_runs(self, tmp_path):
        # `sh -c {command}` is the smallest real template: the command
        # travels as one string, exactly as it would over SSH.
        log = tmp_path / "job.log"
        with TemplateBackend(["sh", "-c", "{command}"]) as backend:
            handle = backend.launch(
                [sys.executable, "-c", "print('via template')"], log
            )
            assert _wait_exit(backend, handle) == 0
        assert "via template" in log.read_text()

    def test_make_backend(self):
        assert isinstance(make_backend("local", slots=2), LocalBackend)
        templated = make_backend(
            "template", slots=2, template=["sh", "-c", "{command}"]
        )
        assert isinstance(templated, TemplateBackend)
        with pytest.raises(DispatchError):
            make_backend("slurm")
        with pytest.raises(DispatchError):
            make_backend("template")  # template kind without a template
        with pytest.raises(DispatchError):
            make_backend("local", template=["sh", "-c", "{command}"])


class TestPlans:
    @staticmethod
    def _embedded_job(plan):
        """The JobSpec JSON a plan's worker command carries verbatim."""
        argv = list(plan.argv)
        return json.loads(argv[argv.index("--job-json") + 1])

    def test_figure2_plan_matches_spec_identity(self):
        plan = plan_figure2(m=2, n_tasksets=4, seed=11, step=0.5)
        spec = figure2_spec(m=2, n_tasksets=4, seed=11, step=0.5)
        assert plan.fingerprint == spec.fingerprint()
        assert plan.total_items == spec.total_items
        assert plan.kind == "sweep"
        assert plan.supports_checkpoint
        # Worker command lines carry the declarative job, not flags.
        assert "sweep-run" in plan.argv
        assert self._embedded_job(plan)["workload"]["kind"] == "figure2"

    def test_group2_plan_matches_spec_identity(self):
        plan = plan_group2(m=2, n_tasksets=4, seed=11, step=0.5)
        spec = group2_spec(m=2, n_tasksets=4, seed=11, step=0.5)
        assert plan.fingerprint == spec.fingerprint()
        assert plan.total_items == spec.total_items
        assert self._embedded_job(plan)["workload"]["kind"] == "group2"

    def test_splitsweep_plan(self):
        plan = plan_splitsweep(
            m=2, utilization=1.2, thresholds=[25.0, 100.0], n_tasksets=5,
            seed=9,
        )
        assert plan.kind == "splitsweep"
        assert plan.total_items == 5
        assert not plan.supports_checkpoint
        assert not plan.supports_chunk_size
        # Thresholds are normalised to descending order so the
        # fingerprint matches what the dispatched command computes.
        workload = self._embedded_job(plan)["workload"]
        assert workload["thresholds"] == [100.0, 25.0]

    def test_worker_job_carries_no_placement(self):
        # Per-shard placement is appended as flag overrides; a base
        # worker spec carrying any would make shards clobber each other.
        execution = self._embedded_job(
            plan_figure2(m=2, n_tasksets=4, seed=11, step=0.5, jobs=3)
        )["execution"]
        assert execution["jobs"] == 3
        for field in ("shard", "shard_out", "stream", "checkpoint", "items"):
            assert execution[field] is None

    def test_plans_differ_by_parameters(self):
        base = plan_figure2(m=2, n_tasksets=4, seed=11, step=0.5)
        assert base.fingerprint != plan_figure2(
            m=2, n_tasksets=4, seed=12, step=0.5
        ).fingerprint
        assert base.fingerprint != plan_group2(
            m=2, n_tasksets=4, seed=11, step=0.5
        ).fingerprint


class TestOrchestratorValidation:
    def _plan(self):
        return plan_figure2(m=2, n_tasksets=4, seed=11, step=0.5)

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, retries=-1)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, poll_interval=-1.0)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, stall_timeout=0.0)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, shards=0)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, elastic=True, elastic_after=-1.0)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, elastic=True, elastic_min_items=1)
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, elastic=True, max_splits=-1)

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "version": 1, "fingerprint": "deadbeef", "shard_count": 2,
            "total_items": 12, "shards": [],
        }))
        with pytest.raises(OrchestrationError):
            Orchestrator(self._plan(), tmp_path, workers=2)._prepare_jobs()

    def test_shard_count_change_rejected(self, tmp_path):
        plan = self._plan()
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "version": 1, "fingerprint": plan.fingerprint, "shard_count": 3,
            "total_items": plan.total_items, "shards": [],
        }))
        with pytest.raises(OrchestrationError):
            Orchestrator(plan, tmp_path, workers=2)._prepare_jobs()

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{ truncated")
        with pytest.raises(OrchestrationError):
            load_manifest(tmp_path)

    def test_version_skew_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"version": 99}))
        with pytest.raises(OrchestrationError):
            load_manifest(tmp_path)

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_status_needs_a_manifest(self, tmp_path):
        with pytest.raises(OrchestrationError):
            read_status(tmp_path)

    def test_prepare_cleans_stale_tmps(self, tmp_path):
        stale = tmp_path / "shard-1of2.json.12345.tmp"
        stale.write_text("{}")
        Orchestrator(self._plan(), tmp_path, workers=2)._prepare_jobs()
        assert not stale.exists()


class TestOrchestratorIntegration:
    """Real subprocess dispatch on tiny sweeps."""

    KWARGS = dict(m=2, n_tasksets=4, seed=11, step=0.5)

    def test_resume_reuses_finished_artifacts(self, tmp_path):
        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        first = Orchestrator(plan, out, workers=2).run()
        assert first.attempts == {0: 1, 1: 1}
        # Second run over the same directory: nothing left to dispatch.
        second = Orchestrator(plan, out, workers=2).run()
        assert second.attempts == {0: 0, 1: 0}
        # Both merges read the same artifacts, elapsed_seconds included.
        assert second.result == first.result

    def test_resume_is_independent_of_directory_order(
        self, tmp_path, monkeypatch
    ):
        # DET001 regression: sub-shard scanning, stale-file sweeps and
        # artifact reuse all walk globs of the output directory; a host
        # whose filesystem yields entries in a different order must
        # still resume to the bit-identical result.
        import pathlib

        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        first = Orchestrator(plan, out, workers=2).run()

        real_glob = pathlib.Path.glob

        def reversed_glob(self, pattern):
            return iter(sorted(real_glob(self, pattern), reverse=True))

        monkeypatch.setattr(pathlib.Path, "glob", reversed_glob)
        second = Orchestrator(plan, out, workers=2).run()
        assert second.attempts == {0: 0, 1: 0}
        assert second.result == first.result

    def test_resume_over_stale_stream_recovers(self, tmp_path):
        # An interrupted orchestration leaves a partial stream behind;
        # the resumed first launch must discard it before tailing, or
        # the live merger double-counts / reads mid-line offsets.
        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        stale = out / "shard-1of2.jsonl"
        stale.write_text(
            json.dumps({
                "type": "header", "version": 1, "kind": "sweep",
                "fingerprint": plan.fingerprint, "shard": None,
                "total_items": plan.total_items, "meta": {},
            }) + "\n"
            + json.dumps({
                "type": "chunk", "start": 0, "stop": plan.total_items,
                "counts": {}, "replayed": False,
            }) + "\n"
        )
        outcome = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()
        assert outcome.view.done_items == plan.total_items  # not doubled
        # A resume is not a retry: the restarts metric stays clean.
        assert all(s.restarts == 0 for s in outcome.view.shards)

    def test_exhausted_retries_raise(self, tmp_path):
        plan = plan_figure2(**self.KWARGS)

        class AlwaysFails(LocalBackend):
            def launch(self, argv, log_path, env=None):
                return super().launch(
                    [sys.executable, "-c", "import sys; sys.exit(7)"],
                    log_path, env=env,
                )

        with AlwaysFails(slots=2) as backend:
            with pytest.raises(OrchestrationError, match="failed"):
                Orchestrator(
                    plan, tmp_path / "orch", backend=backend, retries=1,
                    poll_interval=0.05,
                ).run()
        manifest = load_manifest(tmp_path / "orch")
        assert manifest["state"] == "failed"

    def test_failed_launch_is_retried_not_fatal(self, tmp_path):
        # A slot can vanish between the orchestrator's slots check and
        # the launch (an idle daemon dying): the DispatchError must
        # count as a failed attempt and heal, not abort the run.
        plan = plan_figure2(**self.KWARGS)

        class LaunchFlake(LocalBackend):
            def __init__(self):
                super().__init__(slots=2)
                self.flaked = 0

            def launch(self, argv, log_path, env=None):
                if self.flaked == 0 and "--shard" in list(argv):
                    self.flaked += 1
                    raise DispatchError("slot vanished under the launch")
                return super().launch(argv, log_path, env=env)

        with LaunchFlake() as backend:
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, retries=2,
                poll_interval=0.05,
            ).run()
        assert backend.flaked == 1
        assert outcome.retries >= 1
        assert outcome.view.done_items == plan.total_items

    def test_exhausted_launch_failures_raise(self, tmp_path):
        plan = plan_figure2(**self.KWARGS)

        class NeverLaunches(LocalBackend):
            def __init__(self):
                super().__init__(slots=2)

            def launch(self, argv, log_path, env=None):
                raise DispatchError("no slot, ever")

        with NeverLaunches() as backend:
            with pytest.raises(OrchestrationError, match="could not be launched"):
                Orchestrator(
                    plan, tmp_path / "orch", backend=backend, retries=1,
                    poll_interval=0.01,
                ).run()

    def test_never_started_shard_trips_stall_relaunch(self, tmp_path):
        # Satellite regression: a backend launch that "succeeds" but
        # whose process dies pre-open (here: never opens the stream and
        # never exits) must trip the stall relaunch purely off the
        # launch clock — there is no stream progress to wait on.
        plan = plan_figure2(**self.KWARGS)

        class NeverStarts(LocalBackend):
            def __init__(self):
                super().__init__(slots=2)
                self.sabotaged = 0

            def launch(self, argv, log_path, env=None):
                if self.sabotaged == 0 and "--shard" in list(argv):
                    self.sabotaged += 1
                    return super().launch(
                        [sys.executable, "-c", "import time; time.sleep(600)"],
                        log_path, env=env,
                    )
                return super().launch(argv, log_path, env=env)

        with NeverStarts() as backend:
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, retries=3,
                poll_interval=0.05, stall_timeout=3.0,
            ).run()
        assert backend.sabotaged == 1
        assert outcome.retries >= 1
        # The sabotaged shard's stream was never created, yet every
        # item was recovered by the relaunch.
        assert outcome.view.done_items == plan.total_items

    def test_stalled_shard_is_relaunched(self, tmp_path):
        plan = plan_figure2(**self.KWARGS)

        class StallsOnce(LocalBackend):
            def __init__(self):
                super().__init__(slots=2)
                self.stalled = 0

            def launch(self, argv, log_path, env=None):
                if self.stalled == 0 and "--shard" in list(argv):
                    self.stalled += 1
                    return super().launch(
                        [sys.executable, "-c", "import time; time.sleep(600)"],
                        log_path, env=env,
                    )
                return super().launch(argv, log_path, env=env)

        with StallsOnce() as backend:
            # 3s, not 1s: worker start-up (interpreter + numpy import)
            # already costs >1s on a loaded single-core box, so a 1s
            # stall timeout intermittently killed *healthy* shards.
            outcome = Orchestrator(
                plan, tmp_path / "orch", backend=backend, retries=3,
                poll_interval=0.05, stall_timeout=3.0,
            ).run()
        assert outcome.retries >= 1
        assert sum(s.restarts for s in outcome.view.shards) >= 1

    def test_resume_reuses_finished_sub_shard_artifacts(self, tmp_path):
        # Satellite (resumable elastic orchestrations): an interrupted
        # elastic run leaves finished *sub-shard* artifacts behind; a
        # resumed run must reuse them and dispatch only the uncovered
        # remainder, instead of recomputing the slice from scratch.
        import dataclasses
        import warnings

        from repro.engine import ShardSpec
        from repro.engine.shard import load_shard
        from repro.experiments.figure2 import run_figure2

        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        shard = ShardSpec(0, 2)
        slice_items = list(shard.items(plan.total_items))
        sub_items = slice_items[: len(slice_items) // 2]
        sub_artifact = out / "shard-1of2.sub1-1of2.artifact.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            run_figure2(
                **self.KWARGS, shard=shard, items=sub_items,
                shard_out=sub_artifact,
                stream=out / "shard-1of2.sub1-1of2.jsonl",
            )
            reference = run_figure2(**self.KWARGS)
        before = sub_artifact.read_bytes()

        outcome = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()

        # The sub artifact was reused byte-for-byte, not recomputed.
        assert sub_artifact.read_bytes() == before
        assert sorted(outcome.attempts.values()).count(0) == 1
        # The remainder invocation computed exactly the uncovered items.
        remainder = load_shard(out / "shard-1of2.resume1.artifact.json")
        assert remainder.covered_items() == (
            set(slice_items) - set(sub_items)
        )
        strip = lambda r: dataclasses.replace(r, elapsed_seconds=0.0)  # noqa: E731
        assert strip(outcome.result) == strip(reference)

        # A third run over the same directory reuses everything.
        again = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()
        assert set(again.attempts.values()) == {0}
        assert again.result == outcome.result

    def test_corrupt_sub_artifacts_cleaned_not_reused(self, tmp_path):
        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        stale = out / "shard-1of2.sub1-1of2.artifact.json"
        stale.write_text("{ corrupt")
        (out / "shard-1of2.sub1-1of2.jsonl").write_text("garbage\n")
        outcome = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()
        # Nothing reusable: whole shards were dispatched, the stale
        # partial files swept so they cannot shadow the fresh attempt.
        assert outcome.attempts == {0: 1, 1: 1}
        assert not stale.exists()
        assert outcome.view.done_items == plan.total_items

    def test_invalid_partials_swept_even_when_others_are_reused(self, tmp_path):
        # A valid sub artifact next to a corrupt one: the good one is
        # reused, the bad one must still be deleted or it would poison
        # the `shard-*.artifact.json` merge glob sweep-status prints.
        import warnings

        from repro.engine import ShardSpec
        from repro.experiments.figure2 import run_figure2

        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        shard = ShardSpec(0, 2)
        slice_items = list(shard.items(plan.total_items))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            run_figure2(
                **self.KWARGS, shard=shard, items=slice_items[:2],
                shard_out=out / "shard-1of2.sub1-1of2.artifact.json",
            )
        corrupt = out / "shard-1of2.sub1-2of2.artifact.json"
        corrupt.write_text("{ corrupt")
        outcome = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()
        assert not corrupt.exists()
        assert sorted(outcome.attempts.values()).count(0) == 1  # reused
        import dataclasses

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reference = run_figure2(**self.KWARGS)
        strip = lambda r: dataclasses.replace(r, elapsed_seconds=0.0)  # noqa: E731
        assert strip(outcome.result) == strip(reference)

    def test_sub_artifact_of_other_sweep_not_reused(self, tmp_path):
        import warnings

        from repro.engine import ShardSpec
        from repro.experiments.figure2 import run_figure2

        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        shard = ShardSpec(0, 2)
        other = dict(self.KWARGS, seed=self.KWARGS["seed"] + 1)
        foreign = out / "shard-1of2.sub1-1of2.artifact.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            run_figure2(
                **other, shard=shard,
                items=list(shard.items(plan.total_items))[:1],
                shard_out=foreign,
            )
        outcome = Orchestrator(plan, out, workers=2, poll_interval=0.05).run()
        assert outcome.attempts == {0: 1, 1: 1}  # recomputed whole shards
        assert not foreign.exists()

    def test_status_on_live_directory(self, tmp_path):
        # Build a half-done orchestration by hand: one finished shard
        # artifact+stream, one shard mid-run (stream only).
        from repro.engine import ShardSpec
        from repro.experiments.figure2 import run_figure2

        plan = plan_figure2(**self.KWARGS)
        out = tmp_path / "orch"
        out.mkdir()
        run_figure2(
            **self.KWARGS, shard=ShardSpec(0, 2),
            shard_out=out / "shard-1of2.json", stream=out / "shard-1of2.jsonl",
        )
        manifest = {
            "version": 1, "experiment": "figure2", "kind": "sweep",
            "fingerprint": plan.fingerprint,
            "total_items": plan.total_items, "shard_count": 2,
            "argv": list(plan.argv), "state": "running",
            "shards": [
                {"index": 0, "artifact": "shard-1of2.json",
                 "stream": "shard-1of2.jsonl", "checkpoint": None,
                 "log": "shard-1of2.log", "attempts": 1},
                {"index": 1, "artifact": "shard-2of2.json",
                 "stream": "shard-2of2.jsonl", "checkpoint": None,
                 "log": "shard-2of2.log", "attempts": 1},
            ],
        }
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        status = read_status(out)
        assert not status.complete
        assert status.artifacts_done == {0: True, 1: False}
        assert status.view.done_items == plan.total_items // 2
        assert status.view.shards[0].state == "finished"
        assert status.view.shards[1].state == "waiting"


class TestCacheAwarePlacement:
    """Fingerprint-clustered dispatch: validation and job shapes."""

    def _plan(self, **kwargs):
        return plan_figure2(
            m=2, n_tasksets=4, seed=11, step=0.5,
            placement="cache-aware", **kwargs,
        )

    def test_plan_carries_fingerprints(self):
        plan = self._plan()
        assert plan.placement == "cache-aware"
        assert plan.item_fingerprints is not None
        assert len(plan.item_fingerprints) == plan.total_items

    def test_strided_plan_skips_fingerprints(self):
        plan = plan_figure2(m=2, n_tasksets=4, seed=11, step=0.5)
        assert plan.placement == "strided"
        assert plan.item_fingerprints is None

    def test_missing_fingerprints_rejected(self, tmp_path):
        from dataclasses import replace

        bare = replace(self._plan(), item_fingerprints=None)
        with pytest.raises(OrchestrationError, match="fingerprints"):
            Orchestrator(bare, tmp_path, workers=2)

    def test_fingerprint_count_checked(self, tmp_path):
        from dataclasses import replace

        short = replace(self._plan(), item_fingerprints=("f",))
        with pytest.raises(OrchestrationError):
            Orchestrator(short, tmp_path, workers=2)

    def test_elastic_is_mutually_exclusive(self, tmp_path):
        with pytest.raises(OrchestrationError, match="elastic"):
            Orchestrator(self._plan(), tmp_path, workers=2, elastic=True)

    def test_resume_placement_mismatch_rejected(self, tmp_path):
        plan = self._plan()
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "version": 1, "fingerprint": plan.fingerprint,
            "shard_count": 2, "total_items": plan.total_items,
            "placement": "strided", "shards": [],
        }))
        with pytest.raises(OrchestrationError, match="placement"):
            Orchestrator(plan, tmp_path, workers=2)._prepare_jobs()

    def test_placed_jobs_partition_all_items(self, tmp_path):
        plan = self._plan()
        jobs = Orchestrator(plan, tmp_path, workers=3)._prepare_jobs()
        covered = sorted(i for job in jobs for i in job.items)
        assert covered == list(range(plan.total_items))
        for job in jobs:
            assert job.shard.label == "1/1"
        # Deterministic: a replan produces the same groups.
        again = Orchestrator(
            plan, tmp_path / "other", workers=3
        )._prepare_jobs()
        assert [j.items for j in again] == [j.items for j in jobs]

    def test_manifest_records_placement(self, tmp_path):
        plan = plan_figure2(m=2, n_tasksets=2, seed=11, step=1.0,
                            placement="cache-aware")
        Orchestrator(
            plan, tmp_path, workers=2, poll_interval=0.05
        ).run()
        manifest = load_manifest(tmp_path)
        assert manifest["placement"] == "cache-aware"
