"""The Session façade and the ``sweep-run`` CLI.

Covers the tentpole's behavioural contract: inline job execution is
bit-identical to the legacy entry points, submitted jobs run
asynchronously on dispatch backends and rebuild their results from
shard artifacts, job files resume through their checkpoints, and the
``sweep-run`` subcommand reproduces the legacy subcommands' artifacts
bit-for-bit (fingerprints included).
"""

import dataclasses
import json
import warnings
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import ShardSpec
from repro.engine.jobspec import (
    ExecutionPolicy,
    JobSpec,
    Workload,
    load_job,
    save_job,
)
from repro.engine.session import Session, run_job
from repro.engine.shard import load_shard
from repro.exceptions import DispatchError, JobSpecError


def _strip(result):
    return dataclasses.replace(result, elapsed_seconds=0.0)


def _figure2_job(**execution) -> JobSpec:
    return JobSpec(
        workload=Workload(kind="figure2", m=2, n_tasksets=4, seed=3, step=1.0),
        execution=ExecutionPolicy(**execution),
    )


def _legacy_figure2(**kwargs):
    from repro.experiments.figure2 import run_figure2

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return run_figure2(m=2, n_tasksets=4, seed=3, step=1.0, **kwargs)


class TestSessionRun:
    def test_inline_run_matches_legacy(self):
        assert _strip(run_job(_figure2_job())) == _strip(_legacy_figure2())

    def test_executor_policy_is_respected_bit_identically(self):
        reference = _strip(run_job(_figure2_job()))
        for execution in (
            dict(jobs=2),
            dict(jobs=2, executor="thread"),
            dict(jobs=2, chunk_size=3),
        ):
            assert _strip(run_job(_figure2_job(**execution))) == reference

    def test_sharded_job_writes_artifact(self, tmp_path):
        artifact = tmp_path / "shard.json"
        run_job(_figure2_job(shard=ShardSpec(0, 2), shard_out=artifact))
        loaded = load_shard(artifact)
        assert loaded.fingerprint == _figure2_job().fingerprint()
        assert loaded.shard == ShardSpec(0, 2)

    def test_group2_job_matches_legacy(self):
        from repro.experiments.group2 import run_group2, summarize_group2

        job = JobSpec(workload=Workload(
            kind="group2", m=2, n_tasksets=4, seed=3, step=1.0,
        ))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_group2(m=2, n_tasksets=4, seed=3, step=1.0)
        report = summarize_group2(run_job(job))
        assert _strip(report.sweep) == _strip(legacy.sweep)
        assert report.max_gap == legacy.max_gap

    def test_splitsweep_job_matches_legacy(self):
        from repro.experiments.splitsweep import run_split_sweep

        job = JobSpec(workload=Workload(
            kind="splitsweep", m=2, n_tasksets=3, utilization=1.0,
            thresholds=(100.0, 20.0), seed=7,
        ))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_split_sweep(
                m=2, utilization=1.0, thresholds=[100.0, 20.0],
                n_tasksets=3, seed=7,
            )
        assert run_job(job) == legacy

    def test_resume_runs_job_file_through_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "ckpt.json"
        job = _figure2_job(checkpoint=checkpoint)
        job_file = save_job(tmp_path / "job.json", job)
        with Session() as session:
            first = session.resume(job_file)
        assert checkpoint.exists()
        # A second resume replays the finished checkpoint (no recompute
        # needed for correctness — counts must still be identical).
        with Session() as session:
            assert _strip(session.resume(job_file)) == _strip(first)


class TestSessionSubmit:
    def test_submit_wait_result(self, tmp_path):
        with Session(out_dir=tmp_path) as session:
            handle = session.submit(_figure2_job())
            status = session.wait(handle, timeout=120.0)
            assert status.state == "done"
            result = session.result(handle)
        assert _strip(result) == _strip(_legacy_figure2())
        # The dispatched spec is recorded next to the artifact.
        recorded = load_job(handle.job_file)
        assert recorded.workload == _figure2_job().workload
        assert recorded.execution.shard_out is not None

    def test_sharded_submit_yields_its_artifact(self, tmp_path):
        # A job restricted to one shard cannot merge alone; result()
        # hands back the shard artifact for a later merge instead of
        # failing the coverage validation.
        from repro.engine.shard import ShardArtifact, merge_shards

        with Session(out_dir=tmp_path) as session:
            handles = [
                session.submit(_figure2_job(shard=ShardSpec(index, 2)))
                for index in range(2)
            ]
            partials = [session.result(handle) for handle in handles]
        assert all(isinstance(p, ShardArtifact) for p in partials)
        assert _strip(merge_shards(partials)) == _strip(_legacy_figure2())

    def test_submit_requires_somewhere_to_write(self):
        with Session() as session:
            with pytest.raises(JobSpecError, match="out_dir"):
                session.submit(_figure2_job())

    def test_failed_job_surfaces_log(self, tmp_path):
        # A spec whose checkpoint path is an unwritable directory makes
        # the child fail fast.
        bad = _figure2_job(checkpoint=tmp_path)  # a directory, not a file
        with Session(out_dir=tmp_path) as session:
            handle = session.submit(bad)
            with pytest.raises(DispatchError, match="failed"):
                session.result(handle)

    def test_submit_registry_kind_rebuilds_result(self, tmp_path):
        # A registry-promoted kind goes through the same submit path:
        # the work order is a sweep-run --job-json command line, and
        # result() rebuilds the typed result from the shard artifact.
        job = JobSpec(workload=Workload(
            kind="sensitivity", m=2, n_tasksets=3, seed=5,
            utilization=1.0, max_scale=4.0,
        ))
        inline = run_job(job)
        with Session(out_dir=tmp_path) as session:
            handle = session.submit(job)
            assert session.wait(handle, timeout=120.0).state == "done"
            assert session.result(handle) == inline

    def test_resume_registry_kind_job_file(self, tmp_path):
        job = JobSpec(workload=Workload(
            kind="simulate", m=2, n_tasksets=3, seed=5,
            utilization=1.5, horizon_factor=2.0,
        ))
        job_file = save_job(tmp_path / "job.json", job)
        with Session() as session:
            assert session.resume(job_file) == run_job(job)


class TestSweepRunCli:
    FIG2 = ["figure2", "--m", "2", "--tasksets", "4", "--seed", "3",
            "--step", "1.0"]

    def _job_file(self, tmp_path, execution=None):
        path = tmp_path / "job.json"
        save_job(path, _figure2_job(**(execution or {})))
        return str(path)

    def test_inline_csv_matches_legacy_subcommand(self, tmp_path, capsys):
        legacy_csv = tmp_path / "legacy.csv"
        assert main(self.FIG2 + ["--csv", str(legacy_csv)]) == 0
        job_csv = tmp_path / "job.csv"
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--csv", str(job_csv)]) == 0
        assert job_csv.read_bytes() == legacy_csv.read_bytes()
        assert "Figure 2" in capsys.readouterr().out

    def test_artifact_bit_identical_to_legacy_subcommand(self, tmp_path):
        legacy_artifact = tmp_path / "legacy.artifact.json"
        assert main(self.FIG2 + ["--shard", "1/2",
                                 "--shard-out", str(legacy_artifact)]) == 0
        job_artifact = tmp_path / "job.artifact.json"
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--shard", "1/2", "--shard-out", str(job_artifact)]) == 0
        legacy = json.loads(legacy_artifact.read_text())
        fresh = json.loads(job_artifact.read_text())
        legacy.pop("elapsed_seconds")
        fresh.pop("elapsed_seconds")
        assert fresh == legacy  # fingerprint, records, meta: all of it

    def test_set_overrides_apply(self, tmp_path, capsys):
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--set", "workload.m=3", "--dry-run"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["workload"]["m"] == 3

    def test_flag_overrides_beat_job_file(self, tmp_path, capsys):
        job_file = self._job_file(tmp_path, {"jobs": 1})
        assert main(["sweep-run", "--job", job_file, "--jobs", "2",
                     "--executor", "thread", "--dry-run"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["execution"]["jobs"] == 2
        assert printed["execution"]["executor"] == "thread"

    def test_save_job_round_trips(self, tmp_path):
        saved = tmp_path / "effective.json"
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--set", "workload.seed=9", "--save-job", str(saved),
                     "--dry-run"]) == 0
        assert load_job(saved).workload.seed == 9

    def test_job_json_inline(self, capsys):
        job = _figure2_job()
        assert main(["sweep-run", "--job-json", job.to_json(indent=None),
                     "--dry-run"]) == 0
        assert json.loads(capsys.readouterr().out) == job.to_json_dict()

    def test_bad_job_file_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "workload": {"kind": "figure2"}}')
        assert main(["sweep-run", "--job", str(bad)]) == 1
        assert "version" in capsys.readouterr().err

    def test_unknown_set_key_is_one_line_error(self, tmp_path, capsys):
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--set", "workload.warp=9"]) == 1
        assert "warp" in capsys.readouterr().err

    def test_orchestrated_sweep_run_matches_inline(self, tmp_path):
        inline_csv = tmp_path / "inline.csv"
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--csv", str(inline_csv)]) == 0
        orch_csv = tmp_path / "orch.csv"
        assert main([
            "sweep-run", "--job", self._job_file(tmp_path),
            "--workers", "2", "--out", str(tmp_path / "orch"),
            "--csv", str(orch_csv), "--quiet",
        ]) == 0
        assert orch_csv.read_bytes() == inline_csv.read_bytes()
        manifest = json.loads(
            (tmp_path / "orch" / "orchestration.json").read_text()
        )
        assert manifest["experiment"] == "figure2"
        # The dispatched worker command embeds the job JSON verbatim.
        argv = manifest["argv"]
        embedded = json.loads(argv[argv.index("--job-json") + 1])
        assert embedded["workload"]["kind"] == "figure2"

    def test_shard_without_shard_out_derives_default_path(
        self, tmp_path, monkeypatch, capsys
    ):
        # Like the legacy subcommands: a sharded run must persist its
        # artifact even when no --shard-out is given.
        monkeypatch.chdir(tmp_path)
        assert main(["sweep-run", "--job", self._job_file(tmp_path),
                     "--shard", "2/2"]) == 0
        assert (tmp_path / "figure2-m2-shard2of2.json").exists()
        assert "sweep-merge" in capsys.readouterr().out

    def test_splitsweep_job_via_cli(self, tmp_path, capsys):
        job = JobSpec(workload=Workload(
            kind="splitsweep", m=2, n_tasksets=3, utilization=1.0,
            thresholds=(100.0, 20.0),
        ))
        path = tmp_path / "ss.json"
        save_job(path, job)
        assert main(["sweep-run", "--job", str(path)]) == 0
        assert "granularity sweep" in capsys.readouterr().out


EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "jobs"


class TestRegistryKindCli:
    """The three registry kinds through ``sweep-run``, end to end.

    Each checked-in example job under ``examples/jobs/`` must load,
    run inline, shard + merge to the same CSV, and render its table.
    """

    SHRINK = ["--set", "workload.n_tasksets=3"]

    def test_sensitivity_inline_run(self, tmp_path, capsys):
        csv_path = tmp_path / "sens.csv"
        assert main(["sweep-run", "--job",
                     str(EXAMPLES / "sensitivity-small.json"),
                     *self.SHRINK, "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Breakdown-utilisation sensitivity" in out
        assert "blocking slack" in out
        assert csv_path.read_text().startswith("method,")

    def test_simulate_inline_run(self, capsys):
        assert main(["sweep-run", "--job",
                     str(EXAMPLES / "simulate-small.json"),
                     *self.SHRINK]) == 0
        out = capsys.readouterr().out
        assert "Analysis-vs-simulation validation" in out
        assert "analysis sound on this corpus" in out

    def test_timing_inline_run(self, capsys):
        assert main(["sweep-run", "--job",
                     str(EXAMPLES / "timing-small.json"),
                     "--set", "workload.n_tasksets=2"]) == 0
        assert "LP-ILP analysis runtime" in capsys.readouterr().out

    def test_sensitivity_sharded_merge_matches_inline(self, tmp_path, capsys):
        inline_csv = tmp_path / "inline.csv"
        base = ["sweep-run", "--job",
                str(EXAMPLES / "sensitivity-small.json"), *self.SHRINK]
        assert main(base + ["--csv", str(inline_csv)]) == 0
        shards = []
        for index in (1, 2):
            shard_path = tmp_path / f"sens{index}.json"
            assert main(base + ["--shard", f"{index}/2",
                                "--shard-out", str(shard_path)]) == 0
            shards.append(str(shard_path))
        merged_csv = tmp_path / "merged.csv"
        capsys.readouterr()
        assert main(["sweep-merge", *shards, "--csv", str(merged_csv)]) == 0
        assert "2 shards" in capsys.readouterr().out
        assert merged_csv.read_bytes() == inline_csv.read_bytes()

    def test_timing_shard_rejects_chart(self, tmp_path, capsys):
        shard_path = tmp_path / "t1.json"
        assert main(["sweep-run", "--job",
                     str(EXAMPLES / "timing-small.json"),
                     "--set", "workload.n_tasksets=2",
                     "--shard", "1/1", "--shard-out", str(shard_path)]) == 0
        capsys.readouterr()
        assert main(["sweep-merge", str(shard_path), "--chart"]) == 0
        assert "no chart form" in capsys.readouterr().out


class TestCacheDirImpliesReadwrite:
    """``--cache-dir`` alone must imply ``--cache readwrite`` (satellite)."""

    def test_sweep_run_cache_dir_implies_readwrite(self, tmp_path, capsys):
        job = tmp_path / "job.json"
        save_job(job, _figure2_job())
        assert main(["sweep-run", "--job", str(job),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--dry-run"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["execution"]["cache"] == "readwrite"

    def test_explicit_cache_off_wins(self, tmp_path, capsys):
        job = tmp_path / "job.json"
        save_job(job, _figure2_job())
        assert main(["sweep-run", "--job", str(job), "--cache", "off",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--dry-run"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["execution"]["cache"] == "off"

    def test_legacy_subcommand_cache_dir_populates(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["figure2", "--m", "2", "--tasksets", "2", "--seed", "3",
                     "--step", "1.0", "--cache-dir", str(cache_dir)]) == 0
        assert cache_dir.is_dir()
        assert any(cache_dir.glob("*.jsonl"))  # verdicts actually written


class TestDeprecatedShims:
    def test_run_figure2_warns_but_matches(self):
        from repro.experiments.figure2 import run_figure2

        with pytest.warns(DeprecationWarning, match="run_figure2"):
            legacy = run_figure2(m=2, n_tasksets=4, seed=3, step=1.0)
        assert _strip(legacy) == _strip(run_job(_figure2_job()))

    def test_run_group2_warns(self):
        from repro.experiments.group2 import run_group2

        with pytest.warns(DeprecationWarning, match="run_group2"):
            run_group2(m=2, n_tasksets=2, seed=3, step=1.0)

    def test_run_split_sweep_warns(self):
        from repro.experiments.splitsweep import run_split_sweep

        with pytest.warns(DeprecationWarning, match="run_split_sweep"):
            run_split_sweep(m=2, utilization=1.0, thresholds=[50.0],
                            n_tasksets=2)
