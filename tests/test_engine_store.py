"""The durable result store and its validation layer.

Covers the store's four contracts:

* **Round-trip fidelity** — a published run rebuilds its experiment
  result and exports CSV *bit-identically* to the legacy writers, for
  every registered workload kind (hypothesis varies the seed so the
  row payloads are not a single golden value);
* **Idempotence** — re-publishing the same result (even from a
  differently-sharded artifact set) adds zero rows, and concurrent
  publishers from separate processes serialise safely;
* **Validation** — truncation is flagged incomplete (and the run
  refuses to export), a mutated verdict published again is detected
  as drift down to the exact ``(item, seq)``;
* **Typed failures** — corrupt databases and version skew surface as
  :class:`StoreError` (an :class:`AnalysisError`), never as raw
  :mod:`sqlite3` exceptions.
"""

import json
import sqlite3
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine import ShardSpec
from repro.engine.jobspec import ExecutionPolicy, JobSpec, Workload
from repro.engine.registry import kind_spec
from repro.engine.session import run_job
from repro.engine.store import (
    STORE_VERSION,
    ResultStore,
    open_store,
    publish_artifacts,
    store_path,
)
from repro.engine.validation import (
    check_completeness,
    check_drift,
    validate_store,
)
from repro.exceptions import AnalysisError, JobSpecError, StoreError

#: Tiny per-kind workloads: every kind publishable in well under a
#: second, seeds injected by the tests.
_WORKLOADS = {
    "figure2": dict(m=2, n_tasksets=3, step=1.0),
    "group2": dict(m=2, n_tasksets=3, step=1.0),
    "splitsweep": dict(
        m=2, n_tasksets=2, utilization=1.0,
        thresholds=(100.0, 20.0), overhead=0.0,
    ),
    "sensitivity": dict(m=2, n_tasksets=3, utilization=1.0, max_scale=8.0),
    "simulate": dict(m=2, n_tasksets=3, utilization=2.0, horizon_factor=4.0),
    "timing": dict(core_counts=(2,), n_tasksets=2, utilization_factor=0.5),
}


def _job(kind: str, seed: int = 7, **execution) -> JobSpec:
    return JobSpec(
        workload=Workload(kind=kind, seed=seed, **_WORKLOADS[kind]),
        execution=ExecutionPolicy(**execution),
    )


def _run_and_publish(job: JobSpec, base: Path, name: str = "run"):
    """Execute ``job``, publish its artifact; returns (result, report)."""
    artifact = base / f"{name}.artifact.json"
    result = run_job(job.with_overrides(
        {"execution.shard_out": str(artifact)}
    ))
    report = publish_artifacts(base / "store", [artifact], job=job)
    return result, report


def _csv_bytes(path: Path) -> bytes:
    return Path(path).read_bytes()


class TestRoundTrip:
    """publish -> query -> export is lossless for every kind."""

    @pytest.mark.parametrize("kind", sorted(_WORKLOADS))
    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2**16))
    def test_export_csv_is_bit_identical(self, kind, seed):
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp)
            result, report = _run_and_publish(_job(kind, seed=seed), base)
            legacy = base / "legacy.csv"
            kind_spec(kind).write_csv(result, legacy)
            with open_store(base / "store") as store:
                exported = store.export_csv(report.run_id, base / "db.csv")
                assert _csv_bytes(exported) == _csv_bytes(legacy)
                assert store.row_count(report.run_id) == report.row_count
                record = store.run(report.run_id)
                assert record.kind == kind_spec(kind).artifact_kind
                assert record.fingerprint == _job(kind, seed=seed).fingerprint()

    def test_rebuilt_result_matches_for_sweep_kind(self, tmp_path):
        result, report = _run_and_publish(_job("figure2"), tmp_path)
        with open_store(tmp_path / "store") as store:
            rebuilt = store.result(report.run_id)
        assert rebuilt.points == result.points
        assert rebuilt.methods == result.methods
        assert (rebuilt.m, rebuilt.label, rebuilt.seed) == (
            result.m, result.label, result.seed,
        )

    def test_provenance_records_job_and_engine(self, tmp_path):
        job = _job("timing")
        _, report = _run_and_publish(job, tmp_path)
        with open_store(tmp_path / "store") as store:
            record = store.run(report.run_id)
        assert record.job == job.to_json_dict()
        assert record.engine["store_version"] == STORE_VERSION


class TestIdempotence:
    def test_republish_deduplicates(self, tmp_path):
        job = _job("figure2")
        _, first = _run_and_publish(job, tmp_path, "a")
        _, second = _run_and_publish(job, tmp_path, "b")
        assert not first.deduplicated and first.rows_added > 0
        assert second.deduplicated and second.rows_added == 0
        assert second.run_id == first.run_id
        with open_store(tmp_path / "store") as store:
            assert len(store.runs()) == 1
            assert len(store.publications()) == 2

    def test_sharded_artifacts_deduplicate_against_whole_run(self, tmp_path):
        """Chunk boundaries differ per sharding; canonical rows do not."""
        job = _job("figure2")
        _, whole = _run_and_publish(job, tmp_path)
        shards = []
        for index in range(2):
            out = tmp_path / f"shard{index}.artifact.json"
            run_job(job.with_overrides({
                "execution.shard": ShardSpec(index, 2),
                "execution.shard_out": str(out),
            }))
            shards.append(out)
        report = publish_artifacts(tmp_path / "store", shards, job=job)
        assert report.deduplicated
        assert report.run_id == whole.run_id

    def test_concurrent_publishers_from_separate_processes(self, tmp_path):
        job = _job("splitsweep")
        artifact = tmp_path / "split.artifact.json"
        run_job(job.with_overrides(
            {"execution.shard_out": str(artifact)}
        ))
        store_dir = tmp_path / "store"
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "sweep-db", "publish",
                 str(artifact), "--store-dir", str(store_dir)],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0, stderr.decode()
        with open_store(store_dir) as store:
            assert len(store.runs()) == 1
            assert len(store.publications()) == 2
            report = validate_store(store)
            assert report.ok


class TestValidation:
    def test_truncation_is_incomplete_and_export_refuses(self, tmp_path):
        _, report = _run_and_publish(_job("splitsweep"), tmp_path)
        db = store_path(tmp_path / "store")
        with sqlite3.connect(db) as con:
            con.execute(
                "DELETE FROM rows WHERE run_id = ? AND item = 1",
                (report.run_id,),
            )
        with open_store(tmp_path / "store") as store:
            issues = check_completeness(store)
            assert len(issues) == 1
            assert issues[0].run_id == report.run_id
            assert 1 in issues[0].missing_items
            assert issues[0].actual_rows < issues[0].expected_rows
            assert not validate_store(store).ok
            with pytest.raises(StoreError):
                store.result(report.run_id)
            with pytest.raises(StoreError):
                store.export_csv(report.run_id, tmp_path / "refused.csv")

    def test_mutated_verdict_is_detected_as_drift(self, tmp_path):
        job = _job("splitsweep")
        artifact = tmp_path / "split.artifact.json"
        run_job(job.with_overrides(
            {"execution.shard_out": str(artifact)}
        ))
        publish_artifacts(tmp_path / "store", [artifact], job=job)

        payload = json.loads(artifact.read_text())
        row = payload["records"][0]["rows"][0]
        row[3] = not row[3]  # flip one schedulability verdict
        mutated = tmp_path / "mutated.artifact.json"
        mutated.write_text(json.dumps(payload))
        publish_artifacts(tmp_path / "store", [mutated], job=job)

        with open_store(tmp_path / "store") as store:
            assert len(store.runs()) == 2  # different content, new run
            drift = check_drift(store)
        assert len(drift) == 1
        assert (drift[0].item, drift[0].seq) == (0, 0)
        assert drift[0].payloads[0] != drift[0].payloads[1]

    def test_clean_store_validates_ok(self, tmp_path):
        _run_and_publish(_job("sensitivity"), tmp_path)
        with open_store(tmp_path / "store") as store:
            report = validate_store(store)
        assert report.ok
        assert report.runs_checked == 1


class TestTypedFailures:
    def test_corrupt_database_raises_store_error(self, tmp_path):
        db = store_path(tmp_path)
        db.parent.mkdir(parents=True, exist_ok=True)
        db.write_bytes(b"this is not a sqlite database, honest\x00" * 40)
        with pytest.raises(StoreError):
            open_store(tmp_path)

    def test_version_skew_raises_store_error(self, tmp_path):
        open_store(tmp_path).close()
        with sqlite3.connect(store_path(tmp_path)) as con:
            con.execute(
                "UPDATE store_meta SET value = '99' "
                "WHERE key = 'store_version'"
            )
        with pytest.raises(StoreError, match="store version"):
            open_store(tmp_path)

    def test_store_error_is_an_analysis_error(self):
        assert issubclass(StoreError, AnalysisError)

    def test_publishing_incomplete_shard_set_refuses(self, tmp_path):
        job = _job("figure2")
        out = tmp_path / "half.artifact.json"
        run_job(job.with_overrides({
            "execution.shard": ShardSpec(0, 2),
            "execution.shard_out": str(out),
        }))
        with pytest.raises(AnalysisError):
            publish_artifacts(tmp_path / "store", [out], job=job)


class TestPolicyPlumbing:
    def test_publish_round_trips_through_json(self):
        job = _job("figure2", publish=True, store_dir="results/x")
        clone = JobSpec.from_json(job.to_json())
        assert clone.execution.publish is True
        assert clone.execution.store_dir == "results/x"
        assert clone == job

    def test_old_payloads_default_to_not_publishing(self):
        payload = _job("figure2").to_json_dict()
        del payload["execution"]["publish"]
        del payload["execution"]["store_dir"]
        job = JobSpec.from_json_dict(payload)
        assert job.execution.publish is False
        assert job.execution.store_dir is None

    def test_for_worker_strips_publishing(self):
        job = _job("figure2", publish=True, store_dir="results/x")
        worker = job.for_worker()
        assert worker.execution.publish is False
        assert worker.execution.store_dir is None

    def test_sharded_publish_is_rejected(self):
        with pytest.raises(JobSpecError, match="whole-run"):
            _job("figure2", publish=True, shard=ShardSpec(0, 2),
                 shard_out="s.json")
        with pytest.raises(JobSpecError, match="whole-run"):
            _job("figure2", publish=True, items=(0, 1),
                 shard=None, shard_out="s.json")


class TestCli:
    def test_session_run_publishes_via_policy(self, tmp_path):
        job = _job("timing", publish=True,
                   store_dir=str(tmp_path / "store"))
        run_job(job)
        with open_store(tmp_path / "store") as store:
            runs = store.runs()
        assert len(runs) == 1
        assert runs[0].kind == "timing"

    def test_sweep_db_validate_exit_codes(self, tmp_path, capsys):
        _, report = _run_and_publish(_job("simulate"), tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["sweep-db", "validate", "--store-dir", store_dir]) == 0
        with sqlite3.connect(store_path(store_dir)) as con:
            con.execute("DELETE FROM rows WHERE item = 0")
        assert main(["sweep-db", "validate", "--store-dir", store_dir]) == 1
        out = capsys.readouterr().out
        assert "incomplete" in out

    def test_sweep_db_export_csv_matches_legacy(self, tmp_path, capsys):
        result, report = _run_and_publish(_job("sensitivity"), tmp_path)
        legacy = tmp_path / "legacy.csv"
        kind_spec("sensitivity").write_csv(result, legacy)
        assert main([
            "sweep-db", "export-csv",
            "--store-dir", str(tmp_path / "store"),
            "--csv", str(tmp_path / "db.csv"),
        ]) == 0
        assert _csv_bytes(tmp_path / "db.csv") == _csv_bytes(legacy)

    def test_store_dir_implies_publish(self, tmp_path):
        assert main([
            "sweep-run", "--job-json", _job("timing").to_json(indent=None),
            "--store-dir", str(tmp_path / "store"),
        ]) == 0
        with open_store(tmp_path / "store") as store:
            assert len(store.runs()) == 1
