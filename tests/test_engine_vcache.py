"""Unit tests for the persistent verdict cache (:mod:`repro.engine.vcache`)."""

import json
import math

import numpy as np
import pytest

from repro.core.analyzer import AnalysisMethod, analyze_taskset_multi
from repro.core.results import MultiAnalysis, TaskAnalysis, TasksetAnalysis
from repro.engine.vcache import (
    CACHE_VERSION,
    VerdictCache,
    _verdict_from_json,
    _verdict_to_json,
    verdict_key,
)
from repro.exceptions import CacheError
from repro.generator.profiles import GROUP1
from repro.generator.taskset_gen import generate_taskset

ALL_METHODS = tuple(AnalysisMethod)


def _taskset(seed=1, utilization=1.2):
    return generate_taskset(np.random.default_rng(seed), utilization, GROUP1)


class TestVerdictKey:
    def test_deterministic(self):
        ts = _taskset()
        args = (ts, 2, ("fp-ideal",), "search", "assignment", True)
        assert verdict_key(*args) == verdict_key(*args)

    def test_every_argument_is_keyed(self):
        ts = _taskset()
        base = verdict_key(ts, 2, ("fp-ideal",), "search", "assignment", True)
        variants = [
            verdict_key(ts, 4, ("fp-ideal",), "search", "assignment", True),
            verdict_key(ts, 2, ("lp-max",), "search", "assignment", True),
            verdict_key(ts, 2, ("fp-ideal",), "ilp", "assignment", True),
            verdict_key(ts, 2, ("fp-ideal",), "search", "ilp", True),
            verdict_key(ts, 2, ("fp-ideal",), "search", "assignment", False),
            verdict_key(
                _taskset(seed=2), 2, ("fp-ideal",), "search", "assignment", True
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1


class TestVerdictRoundTrip:
    def test_real_analysis_round_trips(self):
        multi = analyze_taskset_multi(_taskset(), 2, ALL_METHODS)
        payload = json.loads(json.dumps(_verdict_to_json(multi)))
        assert _verdict_from_json(payload) == multi

    def test_infinite_response_round_trips(self):
        # json serialises inf as the (non-standard but symmetric)
        # ``Infinity`` literal; the cache relies on that round-trip.
        multi = MultiAnalysis(
            m=2,
            analyses=(
                TasksetAnalysis(
                    method="fp-ideal",
                    m=2,
                    tasks=(
                        TaskAnalysis(
                            name="t",
                            schedulable=False,
                            response=float("inf"),
                            iterations=7,
                            delta_m=1.5,
                            delta_m_minus_1=0.5,
                            preemptions=3,
                            analyzed=True,
                        ),
                    ),
                ),
            ),
        )
        restored = _verdict_from_json(
            json.loads(json.dumps(_verdict_to_json(multi)))
        )
        assert restored == multi
        assert math.isinf(restored.analyses[0].tasks[0].response)

    def test_malformed_verdict_raises_cache_error(self):
        with pytest.raises(CacheError):
            _verdict_from_json({"m": 2})  # no analyses
        with pytest.raises(CacheError):
            _verdict_from_json({"m": 2, "analyses": [{"method": "x"}]})


class TestVerdictCache:
    def test_mode_off_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            VerdictCache(tmp_path, mode="off")
        with pytest.raises(CacheError):
            VerdictCache(tmp_path, mode="bogus")

    def test_read_mode_on_missing_dir_is_empty(self, tmp_path):
        cache = VerdictCache(tmp_path / "nope", mode="read")
        assert cache.get("deadbeef") is None
        assert cache.stats() == {"hits": 0, "misses": 1}
        assert not (tmp_path / "nope").exists()  # read mode creates nothing

    def test_read_mode_put_is_noop(self, tmp_path):
        (tmp_path / "c").mkdir()
        cache = VerdictCache(tmp_path / "c", mode="read")
        cache.put("k", analyze_taskset_multi(_taskset(), 2, ALL_METHODS))
        assert list((tmp_path / "c").glob("*.jsonl")) == []

    def test_cache_path_must_be_a_directory(self, tmp_path):
        bogus = tmp_path / "file"
        bogus.write_text("not a directory")
        with pytest.raises(CacheError):
            VerdictCache(bogus, mode="read")

    def test_cached_hit_is_bit_identical_across_all_methods(self, tmp_path):
        ts = _taskset()
        fresh = analyze_taskset_multi(ts, 2, ALL_METHODS)
        with VerdictCache(tmp_path / "c", mode="readwrite") as writer:
            first = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=writer)
        assert first == fresh
        assert writer.stats() == {"hits": 0, "misses": 1}
        # A brand-new handle must serve the verdict from disk.
        reader = VerdictCache(tmp_path / "c", mode="read")
        hit = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader)
        assert hit == fresh
        assert reader.stats() == {"hits": 1, "misses": 0}

    def test_distinct_parameters_never_share_verdicts(self, tmp_path):
        ts = _taskset()
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
            # Same task-set, different m: a miss, not a stale hit.
            on_four = analyze_taskset_multi(ts, 4, ALL_METHODS, cache=cache)
        assert cache.misses == 2
        assert on_four == analyze_taskset_multi(ts, 4, ALL_METHODS)

    def test_put_skips_existing_key(self, tmp_path):
        multi = analyze_taskset_multi(_taskset(), 2, ALL_METHODS)
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            cache.put("k", multi)
            cache.put("k", multi)
        shard = next((tmp_path / "c").glob("shard-*.jsonl"))
        assert len(shard.read_text().splitlines()) == 1


class TestStaleEntrySweeping:
    def _populate(self, directory):
        ts = _taskset()
        with VerdictCache(directory, mode="readwrite") as cache:
            verdict = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
        shard = next(directory.glob("shard-*.jsonl"))
        return ts, verdict, shard

    def test_corrupt_and_skewed_lines_are_swept(self, tmp_path):
        ts, verdict, shard = self._populate(tmp_path / "c")
        good = shard.read_text()
        bad = tmp_path / "c" / "shard-999.jsonl"
        bad.write_text(
            "{\"version\": 1, \"key\": \"trunc\", \"verd"  # torn line
            + "\n[1, 2, 3]\n"  # not an object
            + json.dumps({"version": CACHE_VERSION + 1, "key": "skew",
                          "verdict": {}}) + "\n"
            + json.dumps({"version": CACHE_VERSION, "verdict": {}}) + "\n"
            + json.dumps({"version": CACHE_VERSION, "key": "noverdict"})
            + "\n"
        )
        reader = VerdictCache(tmp_path / "c", mode="read")
        hit = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader)
        assert hit == verdict  # the good entry survives its bad neighbours
        assert reader.swept == 5
        assert good == shard.read_text()  # sweeping never rewrites shards

    def test_truncated_entry_is_recomputed_and_restored(self, tmp_path):
        # Regression: a writer killed mid-line leaves a torn final
        # entry.  It must be swept, recomputed, and re-persisted — not
        # crash the reader, not serve garbage.
        ts, verdict, shard = self._populate(tmp_path / "c")
        text = shard.read_text()
        shard.write_text(text[: len(text) // 2])  # tear the only entry
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            recomputed = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
            assert cache.swept == 1
            assert cache.stats() == {"hits": 0, "misses": 1}
        assert recomputed == verdict
        # The repaired cache now serves the verdict again.
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader) == verdict
        assert reader.stats() == {"hits": 1, "misses": 0}
