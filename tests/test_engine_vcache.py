"""Unit tests for the persistent verdict cache (:mod:`repro.engine.vcache`)."""

import json
import math
import os
import threading

import numpy as np
import pytest

from repro.core.analyzer import AnalysisMethod, analyze_taskset_multi
from repro.core.results import MultiAnalysis, TaskAnalysis, TasksetAnalysis
import repro.engine.vcache as vcache_module
from repro.engine.vcache import (
    CACHE_VERSION,
    VerdictCache,
    _verdict_from_json,
    _verdict_to_json,
    cache_stats,
    compact_cache,
    gc_cache,
    verdict_key,
)
from repro.exceptions import CacheError
from repro.generator.profiles import GROUP1
from repro.generator.taskset_gen import generate_taskset

ALL_METHODS = tuple(AnalysisMethod)


def _taskset(seed=1, utilization=1.2):
    return generate_taskset(np.random.default_rng(seed), utilization, GROUP1)


class TestVerdictKey:
    def test_deterministic(self):
        ts = _taskset()
        args = (ts, 2, ("fp-ideal",), "search", "assignment", True)
        assert verdict_key(*args) == verdict_key(*args)

    def test_every_argument_is_keyed(self):
        ts = _taskset()
        base = verdict_key(ts, 2, ("fp-ideal",), "search", "assignment", True)
        variants = [
            verdict_key(ts, 4, ("fp-ideal",), "search", "assignment", True),
            verdict_key(ts, 2, ("lp-max",), "search", "assignment", True),
            verdict_key(ts, 2, ("fp-ideal",), "ilp", "assignment", True),
            verdict_key(ts, 2, ("fp-ideal",), "search", "ilp", True),
            verdict_key(ts, 2, ("fp-ideal",), "search", "assignment", False),
            verdict_key(
                _taskset(seed=2), 2, ("fp-ideal",), "search", "assignment", True
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1


class TestVerdictRoundTrip:
    def test_real_analysis_round_trips(self):
        multi = analyze_taskset_multi(_taskset(), 2, ALL_METHODS)
        payload = json.loads(json.dumps(_verdict_to_json(multi)))
        assert _verdict_from_json(payload) == multi

    def test_infinite_response_round_trips(self):
        # json serialises inf as the (non-standard but symmetric)
        # ``Infinity`` literal; the cache relies on that round-trip.
        multi = MultiAnalysis(
            m=2,
            analyses=(
                TasksetAnalysis(
                    method="fp-ideal",
                    m=2,
                    tasks=(
                        TaskAnalysis(
                            name="t",
                            schedulable=False,
                            response=float("inf"),
                            iterations=7,
                            delta_m=1.5,
                            delta_m_minus_1=0.5,
                            preemptions=3,
                            analyzed=True,
                        ),
                    ),
                ),
            ),
        )
        restored = _verdict_from_json(
            json.loads(json.dumps(_verdict_to_json(multi)))
        )
        assert restored == multi
        assert math.isinf(restored.analyses[0].tasks[0].response)

    def test_malformed_verdict_raises_cache_error(self):
        with pytest.raises(CacheError):
            _verdict_from_json({"m": 2})  # no analyses
        with pytest.raises(CacheError):
            _verdict_from_json({"m": 2, "analyses": [{"method": "x"}]})


class TestVerdictCache:
    def test_mode_off_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            VerdictCache(tmp_path, mode="off")
        with pytest.raises(CacheError):
            VerdictCache(tmp_path, mode="bogus")

    def test_read_mode_on_missing_dir_is_empty(self, tmp_path):
        cache = VerdictCache(tmp_path / "nope", mode="read")
        assert cache.get("deadbeef") is None
        assert cache.stats() == {"hits": 0, "misses": 1}
        assert not (tmp_path / "nope").exists()  # read mode creates nothing

    def test_read_mode_put_is_noop(self, tmp_path):
        (tmp_path / "c").mkdir()
        cache = VerdictCache(tmp_path / "c", mode="read")
        cache.put("k", analyze_taskset_multi(_taskset(), 2, ALL_METHODS))
        assert sorted((tmp_path / "c").glob("*.jsonl")) == []

    def test_cache_path_must_be_a_directory(self, tmp_path):
        bogus = tmp_path / "file"
        bogus.write_text("not a directory")
        with pytest.raises(CacheError):
            VerdictCache(bogus, mode="read")

    def test_cached_hit_is_bit_identical_across_all_methods(self, tmp_path):
        ts = _taskset()
        fresh = analyze_taskset_multi(ts, 2, ALL_METHODS)
        with VerdictCache(tmp_path / "c", mode="readwrite") as writer:
            first = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=writer)
        assert first == fresh
        assert writer.stats() == {"hits": 0, "misses": 1}
        # A brand-new handle must serve the verdict from disk.
        reader = VerdictCache(tmp_path / "c", mode="read")
        hit = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader)
        assert hit == fresh
        assert reader.stats() == {"hits": 1, "misses": 0}

    def test_distinct_parameters_never_share_verdicts(self, tmp_path):
        ts = _taskset()
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
            # Same task-set, different m: a miss, not a stale hit.
            on_four = analyze_taskset_multi(ts, 4, ALL_METHODS, cache=cache)
        assert cache.misses == 2
        assert on_four == analyze_taskset_multi(ts, 4, ALL_METHODS)

    def test_put_skips_existing_key(self, tmp_path):
        multi = analyze_taskset_multi(_taskset(), 2, ALL_METHODS)
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            cache.put("k", multi)
            cache.put("k", multi)
        shard = sorted((tmp_path / "c").glob("shard-*.jsonl"))[0]
        assert len(shard.read_text().splitlines()) == 1


class TestStaleEntrySweeping:
    def _populate(self, directory):
        ts = _taskset()
        with VerdictCache(directory, mode="readwrite") as cache:
            verdict = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
        shard = sorted(directory.glob("shard-*.jsonl"))[0]
        return ts, verdict, shard

    def test_corrupt_and_skewed_lines_are_swept(self, tmp_path):
        ts, verdict, shard = self._populate(tmp_path / "c")
        good = shard.read_text()
        bad = tmp_path / "c" / "shard-999.jsonl"
        bad.write_text(
            "{\"version\": 1, \"key\": \"trunc\", \"verd"  # torn line
            + "\n[1, 2, 3]\n"  # not an object
            + json.dumps({"version": CACHE_VERSION + 1, "key": "skew",
                          "verdict": {}}) + "\n"
            + json.dumps({"version": CACHE_VERSION, "verdict": {}}) + "\n"
            + json.dumps({"version": CACHE_VERSION, "key": "noverdict"})
            + "\n"
        )
        reader = VerdictCache(tmp_path / "c", mode="read")
        hit = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader)
        assert hit == verdict  # the good entry survives its bad neighbours
        assert reader.swept == 5
        assert good == shard.read_text()  # sweeping never rewrites shards

    def test_truncated_entry_is_recomputed_and_restored(self, tmp_path):
        # Regression: a writer killed mid-line leaves a torn final
        # entry.  It must be swept, recomputed, and re-persisted — not
        # crash the reader, not serve garbage.
        ts, verdict, shard = self._populate(tmp_path / "c")
        text = shard.read_text()
        shard.write_text(text[: len(text) // 2])  # tear the only entry
        with VerdictCache(tmp_path / "c", mode="readwrite") as cache:
            recomputed = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=cache)
            assert cache.swept == 1
            assert cache.stats() == {"hits": 0, "misses": 1}
        assert recomputed == verdict
        # The repaired cache now serves the verdict again.
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader) == verdict
        assert reader.stats() == {"hits": 1, "misses": 0}


def _tiny_verdict(response=1.0, m=2):
    return MultiAnalysis(
        m=m,
        analyses=(
            TasksetAnalysis(
                method="fp-ideal",
                m=m,
                tasks=(
                    TaskAnalysis(
                        name="t", schedulable=True,
                        response=response, iterations=1,
                    ),
                ),
            ),
        ),
    )


class TestLazyOpen:
    """Satellite regression: open cost is pinned to the index, not the
    payloads — opening a cache and looking up one key decodes exactly
    one verdict, however many entries the directory holds."""

    N = 8

    def _populate(self, directory):
        with VerdictCache(directory, mode="readwrite") as writer:
            for i in range(self.N):
                writer.put(f"k{i}", _tiny_verdict(response=float(i + 1)))

    def test_one_lookup_decodes_one_payload(self, tmp_path, monkeypatch):
        self._populate(tmp_path / "c")
        decodes = []
        real = vcache_module._verdict_from_json
        monkeypatch.setattr(
            vcache_module, "_verdict_from_json",
            lambda payload: decodes.append(1) or real(payload),
        )
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert reader.get("k3") == _tiny_verdict(response=4.0)
        assert len(decodes) == 1  # not N: the other payloads stay on disk
        assert reader.swept == 0  # the index covered the whole shard
        for i in range(self.N):
            reader.get(f"k{i}")
        assert len(decodes) == self.N  # k3 re-served from memory
        assert reader.stats() == {"hits": self.N + 1, "misses": 0}

    def test_corrupt_neighbour_does_not_poison_other_entries(self, tmp_path):
        self._populate(tmp_path / "c")
        shard = sorted((tmp_path / "c").glob("shard-*.jsonl"))[0]
        raw = shard.read_bytes()
        lines = raw.split(b"\n")
        for i, line in enumerate(lines):
            if b'"key":"k5"' in line:
                # Garble the payload in place (same length: every other
                # entry's indexed offset stays valid).
                lines[i] = line[:-10] + b"x" * 10
        shard.write_bytes(b"\n".join(lines))
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert reader.get("k3") == _tiny_verdict(response=4.0)
        assert reader.get("k5") is None  # stale payload → recorded miss
        assert reader.stale == 1
        assert reader.get("k6") == _tiny_verdict(response=7.0)
        assert reader.stats() == {"hits": 2, "misses": 1}

    def test_missing_index_falls_back_to_full_scan(self, tmp_path):
        self._populate(tmp_path / "c")
        shard = sorted((tmp_path / "c").glob("shard-*.jsonl"))[0]
        shard.with_suffix(".idx").unlink()  # legacy / foreign-writer shard
        reader = VerdictCache(tmp_path / "c", mode="read")
        for i in range(self.N):
            assert reader.get(f"k{i}") == _tiny_verdict(response=float(i + 1))
        assert reader.stats() == {"hits": self.N, "misses": 0}
        assert reader.swept == 0

    def test_cache_session_attributes_health_counters(self, tmp_path):
        from repro.engine.sweep import _CacheSession

        self._populate(tmp_path / "c")
        shard = sorted((tmp_path / "c").glob("shard-*.jsonl"))[0]
        raw = shard.read_bytes()
        lines = raw.split(b"\n")
        for i, line in enumerate(lines):
            if b'"key":"k5"' in line:
                lines[i] = line[:-10] + b"x" * 10
        shard.write_bytes(b"\n".join(lines))
        session = _CacheSession(VerdictCache(tmp_path / "c", mode="read"))
        assert session.get("k3") is not None
        assert session.get("k5") is None
        assert session.stats() == {
            "hits": 1, "misses": 1, "swept": 0, "stale": 1,
        }


class TestCacheLifecycle:
    def test_stats_summarises_without_decoding(self, tmp_path, monkeypatch):
        with VerdictCache(tmp_path / "c", mode="readwrite") as writer:
            for i in range(4):
                writer.put(f"k{i}", _tiny_verdict(response=float(i)))
        decodes = []
        real = vcache_module._verdict_from_json
        monkeypatch.setattr(
            vcache_module, "_verdict_from_json",
            lambda payload: decodes.append(1) or real(payload),
        )
        summary = cache_stats(tmp_path / "c")
        assert summary["entries"] == 4
        assert summary["files"] == 1
        assert summary["live_writers"] == 1  # our own pid-named shard
        assert summary["swept"] == 0
        assert summary["data_bytes"] > 0 and summary["index_bytes"] > 0
        assert decodes == []  # stats never touches verdict payloads

    def test_stats_requires_an_existing_directory(self, tmp_path):
        with pytest.raises(CacheError):
            cache_stats(tmp_path / "nope")

    def test_compact_folds_quiescent_shards_bit_identically(self, tmp_path):
        ts = _taskset()
        with VerdictCache(tmp_path / "c", mode="readwrite") as writer:
            on_two = analyze_taskset_multi(ts, 2, ALL_METHODS, cache=writer)
            on_four = analyze_taskset_multi(ts, 4, ALL_METHODS, cache=writer)
        shard = sorted((tmp_path / "c").glob("shard-*.jsonl"))[0]
        # Quiescent source: not named after a live pid.
        shard.rename(tmp_path / "c" / "legacy.jsonl")
        shard.with_suffix(".idx").rename(tmp_path / "c" / "legacy.idx")
        summary = compact_cache(tmp_path / "c")
        assert summary["entries"] == 2
        assert summary["files_removed"] == 1
        assert summary["swept"] == 0
        assert [p.name for p in sorted((tmp_path / "c").glob("*.jsonl"))] == [
            "compact-0.jsonl"
        ]
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert analyze_taskset_multi(ts, 2, ALL_METHODS, cache=reader) == on_two
        assert analyze_taskset_multi(ts, 4, ALL_METHODS, cache=reader) == on_four
        assert reader.stats() == {"hits": 2, "misses": 0}

    def test_compact_sweeps_torn_lines_and_dedupes(self, tmp_path):
        (tmp_path / "c").mkdir()
        line = json.dumps(
            {"version": CACHE_VERSION, "key": "dup",
             "verdict": _verdict_to_json(_tiny_verdict())},
            separators=(",", ":"),
        )
        (tmp_path / "c" / "a.jsonl").write_text(line + "\n" + line[: 20])
        (tmp_path / "c" / "b.jsonl").write_text(line + "\n")
        summary = compact_cache(tmp_path / "c")
        assert summary["entries"] == 1  # duplicates fold to one line
        assert summary["swept"] == 1  # the torn tail never travels
        compacted = tmp_path / "c" / summary["output"]
        assert compacted.read_text() == line + "\n"

    def test_compact_keeps_live_writer_shards(self, tmp_path):
        writer = VerdictCache(tmp_path / "c", mode="readwrite")
        writer.put("before", _tiny_verdict(response=1.0))
        summary = compact_cache(tmp_path / "c")
        assert summary["files_kept"] == 1
        assert summary["files_removed"] == 0
        shard = tmp_path / "c" / f"shard-{os.getpid()}.jsonl"
        assert shard.exists()  # an active writer may append at any moment
        writer.put("after", _tiny_verdict(response=2.0))
        writer.close()
        reader = VerdictCache(tmp_path / "c", mode="read")
        assert reader.get("before") == _tiny_verdict(response=1.0)
        assert reader.get("after") == _tiny_verdict(response=2.0)
        assert reader.swept == 0

    def test_compaction_racing_active_writer_loses_nothing(self, tmp_path):
        # Satellite regression: compaction concurrent with a live
        # writer must lose no committed verdict and write no torn line.
        total = 60
        writer = VerdictCache(tmp_path / "c", mode="readwrite")
        errors = []

        def write_all():
            try:
                for i in range(total):
                    writer.put(f"k{i}", _tiny_verdict(response=float(i)))
            # Thread boundary: relayed to the main thread, which asserts
            # errors == [] below — nothing is swallowed.
            # repro-lint: disable=ERR002
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        thread = threading.Thread(target=write_all)
        thread.start()
        summaries = [compact_cache(tmp_path / "c") for _ in range(5)]
        thread.join()
        writer.close()
        assert errors == []
        # Every pass saw only complete lines (entry writes are atomic
        # at line granularity) and kept the live writer's shard.
        assert all(s["swept"] == 0 for s in summaries)
        final = compact_cache(tmp_path / "c")
        assert final["entries"] == total
        reader = VerdictCache(tmp_path / "c", mode="read")
        for i in range(total):
            assert reader.get(f"k{i}") == _tiny_verdict(response=float(i))
        assert reader.stats() == {"hits": total, "misses": 0}
        assert reader.swept == 0 and reader.stale == 0

    def test_gc_by_age_and_by_size(self, tmp_path):
        (tmp_path / "c").mkdir()
        line = json.dumps(
            {"version": CACHE_VERSION, "key": "old",
             "verdict": _verdict_to_json(_tiny_verdict())},
            separators=(",", ":"),
        ) + "\n"
        old = tmp_path / "c" / "old.jsonl"
        old.write_text(line)
        two_days_ago = os.path.getmtime(old) - 2 * 86400
        os.utime(old, (two_days_ago, two_days_ago))
        new = tmp_path / "c" / "new.jsonl"
        new.write_text(line)
        live = tmp_path / "c" / f"shard-{os.getpid()}.jsonl"
        live.write_text(line)
        by_age = gc_cache(tmp_path / "c", max_age_days=1.0)
        assert by_age["files_removed"] == 1
        assert not old.exists() and new.exists() and live.exists()
        by_size = gc_cache(tmp_path / "c", max_bytes=0)
        assert by_size["files_removed"] == 1
        assert not new.exists()
        assert live.exists()  # a live pid's shard is never collected

    def test_gc_requires_a_criterion(self, tmp_path):
        (tmp_path / "c").mkdir()
        with pytest.raises(CacheError):
            gc_cache(tmp_path / "c")
