"""Coverage for the exception hierarchy and analysis result types."""

import math

import pytest

from repro.core.results import TaskAnalysis, TasksetAnalysis
from repro.exceptions import (
    AnalysisError,
    CycleError,
    GenerationError,
    GraphError,
    IlpError,
    IlpInfeasibleError,
    ModelError,
    ReproError,
    SimulationError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ModelError,
            GraphError,
            AnalysisError,
            IlpError,
            GenerationError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_cycle_is_graph_error(self):
        assert issubclass(CycleError, GraphError)

    def test_infeasible_is_ilp_error(self):
        assert issubclass(IlpInfeasibleError, IlpError)


class TestTaskAnalysis:
    def test_bounded(self):
        ok = TaskAnalysis("t", True, 12.0, 3)
        assert ok.bounded
        failed = TaskAnalysis("t", False, math.inf, 5)
        assert not failed.bounded

    def test_defaults(self):
        result = TaskAnalysis("t", True, 1.0, 1)
        assert result.delta_m == 0.0
        assert result.preemptions == 0
        assert result.analyzed


class TestTasksetAnalysis:
    @pytest.fixture
    def analysis(self):
        return TasksetAnalysis(
            "LP-ILP",
            4,
            (
                TaskAnalysis("a", True, 10.0, 2),
                TaskAnalysis("b", False, math.inf, 7),
                TaskAnalysis("c", False, math.inf, 0, analyzed=False),
            ),
        )

    def test_schedulable_requires_all(self, analysis):
        assert not analysis.schedulable
        happy = TasksetAnalysis(
            "FP-ideal", 2, (TaskAnalysis("a", True, 1.0, 1),)
        )
        assert happy.schedulable

    def test_responses(self, analysis):
        responses = analysis.responses
        assert responses["a"] == 10.0
        assert math.isinf(responses["b"])

    def test_task_lookup(self, analysis):
        assert analysis.task("a").response == 10.0
        with pytest.raises(KeyError):
            analysis.task("zz")

    def test_first_failure(self, analysis):
        failure = analysis.first_failure()
        assert failure is not None
        assert failure.name == "b"
        assert failure.iterations == 7
