"""Reduced-size runs of the paper experiments (figure 2, group 2, timing).

Full-size sweeps live in ``benchmarks/``; here we verify the harnesses
produce structurally correct results and the paper's qualitative shape
on small samples.
"""

import pytest

from repro.experiments.figure2 import check_figure2_shape, run_figure2
from repro.experiments.group2 import run_group2
from repro.experiments.timing import run_timing


class TestFigure2:
    @pytest.fixture(scope="class")
    def mini_sweep(self):
        return run_figure2(m=2, n_tasksets=10, seed=9, step=0.5)

    def test_grid(self, mini_sweep):
        assert [p.utilization for p in mini_sweep.points] == [1.0, 1.5, 2.0]

    def test_shape_holds(self, mini_sweep):
        assert check_figure2_shape(mini_sweep, tolerance=0.10) == []

    def test_label(self, mini_sweep):
        assert mini_sweep.label == "figure2-m2-group1"

    def test_shape_checker_flags_violations(self):
        from repro.experiments.runner import SweepPoint, SweepResult

        bad = SweepResult(
            2, "bad", 1,
            (SweepPoint(1.0, 10, {"FP-ideal": 2, "LP-ILP": 9, "LP-max": 1}),),
            ("FP-ideal", "LP-ILP", "LP-max"),
        )
        violations = check_figure2_shape(bad)
        assert any("LP-ILP" in v for v in violations)

    def test_bad_m(self):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            run_figure2(m=0)


class TestGroup2:
    def test_report(self):
        report = run_group2(m=2, n_tasksets=10, seed=9, step=0.5)
        assert 0.0 <= report.max_gap <= 1.0
        assert report.mean_gap <= report.max_gap
        assert report.sweep.label == "group2-m2"

    def test_group2_methods_close(self):
        """The paper's claim: with uniform high parallelism the two
        blocking bounds give similar schedulability."""
        report = run_group2(m=4, n_tasksets=15, seed=11, step=1.0)
        assert report.max_gap <= 0.25  # generous for the small sample


class TestTiming:
    def test_rows(self):
        rows = run_timing(core_counts=(2, 4), samples=3, seed=5)
        assert [r.m for r in rows] == [2, 4]
        for row in rows:
            assert row.samples == 3
            assert 0 <= row.positive_answers <= 3
            assert 0.0 < row.mean_seconds <= row.max_seconds

    def test_growth_with_m(self):
        """Analysis cost grows with the core count (the paper's trend)."""
        rows = run_timing(core_counts=(2, 16), samples=3, seed=5)
        assert rows[1].mean_seconds > rows[0].mean_seconds

    def test_samples_validated(self):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            run_timing(samples=0)
