"""Unit tests for :mod:`repro.experiments.runner` and reporting."""

import pytest

from repro.core.analyzer import AnalysisMethod
from repro.exceptions import AnalysisError
from repro.experiments.reporting import (
    format_table,
    sweep_chart,
    sweep_rows,
    sweep_table,
    write_csv,
    write_sweep_csv,
)
from repro.experiments.runner import (
    SweepPoint,
    SweepResult,
    run_sweep,
    utilization_grid,
)
from repro.generator.profiles import GROUP1


class TestUtilizationGrid:
    def test_default_steps_scale_with_m(self):
        assert utilization_grid(4)[:3] == [1.0, 1.25, 1.5]
        assert utilization_grid(8)[1] == 1.5
        assert utilization_grid(16)[1] == 2.0

    def test_covers_full_range(self):
        grid = utilization_grid(4)
        assert grid[0] == 1.0
        assert grid[-1] == 4.0

    def test_custom_step(self):
        assert utilization_grid(2, step=0.5) == [1.0, 1.5, 2.0]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            utilization_grid(0)
        with pytest.raises(AnalysisError):
            utilization_grid(4, step=0.0)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(
            m=2,
            utilizations=[0.5, 1.5],
            n_tasksets=6,
            profile=GROUP1,
            seed=42,
            label="test",
        )

    def test_structure(self, sweep):
        assert sweep.m == 2
        assert sweep.label == "test"
        assert len(sweep.points) == 2
        assert sweep.methods == ("FP-ideal", "LP-ILP", "LP-max")

    def test_prebuilt_spec_conflicts_rejected(self):
        from repro.engine import SweepSpec

        spec = SweepSpec(
            m=2, utilizations=(0.5,), n_tasksets=2, profile=GROUP1, seed=1
        )
        with pytest.raises(AnalysisError, match="one or the other"):
            run_sweep(spec=spec, m=4)
        with pytest.raises(AnalysisError, match="one or the other"):
            run_sweep(spec=spec, methods=[AnalysisMethod.LP_ILP])
        with pytest.raises(AnalysisError, match="one or the other"):
            run_sweep(spec=spec, label="other")
        # And neither-spec-nor-parameters is a clean error too.
        with pytest.raises(AnalysisError, match="either a prebuilt spec"):
            run_sweep(m=2, utilizations=[0.5])

    def test_counts_bounded(self, sweep):
        for point in sweep.points:
            for method in sweep.methods:
                assert 0 <= point.schedulable[method] <= point.n_tasksets

    def test_dominance_in_counts(self, sweep):
        for point in sweep.points:
            assert point.schedulable["LP-max"] <= point.schedulable["LP-ILP"]
            assert point.schedulable["LP-ILP"] <= point.schedulable["FP-ideal"]

    def test_series(self, sweep):
        series = sweep.series("FP-ideal")
        assert [u for u, _ in series] == [0.5, 1.5]
        assert all(0.0 <= p <= 100.0 for _, p in series)

    def test_series_unknown_method(self, sweep):
        with pytest.raises(AnalysisError):
            sweep.series("EDF")

    def test_point_ratio_unknown_method(self, sweep):
        with pytest.raises(AnalysisError):
            sweep.points[0].ratio("EDF")

    def test_reproducible(self, sweep):
        again = run_sweep(
            m=2, utilizations=[0.5, 1.5], n_tasksets=6, profile=GROUP1,
            seed=42, label="test",
        )
        assert [p.schedulable for p in again.points] == [
            p.schedulable for p in sweep.points
        ]

    def test_parallel_jobs_bit_identical(self, sweep):
        """Determinism regression: the pool executor must reproduce the
        serial counts exactly for the same seed."""
        parallel = run_sweep(
            m=2, utilizations=[0.5, 1.5], n_tasksets=6, profile=GROUP1,
            seed=42, label="test", jobs=3,
        )
        assert [p.schedulable for p in parallel.points] == [
            p.schedulable for p in sweep.points
        ]
        assert parallel.methods == sweep.methods

    def test_checkpoint_resume(self, tmp_path):
        path = tmp_path / "sweep.json"
        first = run_sweep(
            m=2, utilizations=[0.5, 1.5], n_tasksets=6, profile=GROUP1,
            seed=42, label="test", checkpoint=path,
        )
        assert path.exists()
        # Re-running over the complete checkpoint recomputes nothing
        # and returns the same counts.
        again = run_sweep(
            m=2, utilizations=[0.5, 1.5], n_tasksets=6, profile=GROUP1,
            seed=42, label="test", checkpoint=path,
        )
        assert [p.schedulable for p in again.points] == [
            p.schedulable for p in first.points
        ]

    def test_progress_hook_called(self):
        calls = []
        run_sweep(
            m=2, utilizations=[0.5], n_tasksets=3, profile=GROUP1, seed=1,
            methods=(AnalysisMethod.FP_IDEAL,),
            progress=lambda u, i, n: calls.append((u, i, n)),
        )
        assert calls == [(0.5, 1, 3), (0.5, 2, 3), (0.5, 3, 3)]

    def test_n_tasksets_validated(self):
        with pytest.raises(AnalysisError):
            run_sweep(2, [1.0], 0, GROUP1, seed=1)

    def test_crossover(self):
        points = (
            SweepPoint(1.0, 10, {"X": 10}),
            SweepPoint(2.0, 10, {"X": 4}),
            SweepPoint(3.0, 10, {"X": 0}),
        )
        result = SweepResult(2, "t", 1, points, ("X",))
        assert result.crossover("X") == 2.0
        assert result.crossover("X", threshold=0.3) == 3.0
        assert result.crossover("X", threshold=0.01) == 3.0


class TestReporting:
    @pytest.fixture(scope="class")
    def sweep(self):
        points = (
            SweepPoint(1.0, 4, {"A": 4, "B": 2}),
            SweepPoint(2.0, 4, {"A": 2, "B": 0}),
        )
        return SweepResult(2, "t", 1, points, ("A", "B"))

    def test_format_table_alignment(self):
        text = format_table(["x", "yy"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[1] and "yy" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_sweep_rows(self, sweep):
        rows = sweep_rows(sweep)
        assert rows[0] == [1.0, 100.0, 50.0]
        assert rows[1] == [2.0, 50.0, 0.0]

    def test_sweep_table_contains_methods(self, sweep):
        text = sweep_table(sweep, title="demo")
        assert "demo" in text
        assert "A %" in text and "B %" in text

    def test_sweep_chart_renders(self, sweep):
        chart = sweep_chart(sweep)
        assert "100%" in chart
        assert "0%" in chart
        assert "A=A" in chart and "B=B" in chart  # legend marker=method

    def test_write_csv(self, tmp_path, sweep):
        target = write_csv(tmp_path / "sub" / "t.csv", ["a"], [[1], [2]])
        assert target.read_text().splitlines() == ["a", "1", "2"]

    def test_write_sweep_csv(self, tmp_path, sweep):
        target = write_sweep_csv(sweep, tmp_path / "s.csv")
        lines = target.read_text().splitlines()
        assert lines[0] == "utilization,A,B"
        assert lines[1] == "1.0,1.0,0.5"
