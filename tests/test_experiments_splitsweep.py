"""Unit tests for :mod:`repro.experiments.splitsweep`."""

import pytest

from repro.exceptions import AnalysisError
from repro.experiments.splitsweep import run_split_sweep, split_taskset
from repro.model import DAGTask, DagBuilder, TaskSet


@pytest.fixture
def taskset(diamond):
    return TaskSet([DAGTask("t", diamond, period=60.0, priority=0)])


class TestSplitTaskset:
    def test_threshold_applied(self, taskset):
        split = split_taskset(taskset, 1.0)
        assert all(
            n.wcet <= 1.0 + 1e-9 for t in split for n in t.graph.nodes
        )

    def test_overhead_inflates_volume(self, taskset):
        base = split_taskset(taskset, 1.0)
        inflated = split_taskset(taskset, 1.0, overhead=0.5)
        assert inflated.total_utilization > base.total_utilization

    def test_bad_threshold(self, taskset):
        with pytest.raises(AnalysisError):
            split_taskset(taskset, 0.0)
        with pytest.raises(AnalysisError):
            split_taskset(taskset, float("inf"))


class TestSweep:
    def test_points_structure(self):
        points = run_split_sweep(
            m=2, utilization=1.0, thresholds=[200.0, 50.0],
            n_tasksets=5, seed=3,
        )
        assert [p.threshold for p in points] == [200.0, 50.0]
        for p in points:
            assert 0.0 <= p.ratio <= 1.0
            assert p.mean_q >= 0.0
            assert p.mean_utilization >= 1.0 - 1e-9

    def test_q_grows_as_threshold_shrinks(self):
        points = run_split_sweep(
            m=2, utilization=1.0, thresholds=[200.0, 10.0],
            n_tasksets=5, seed=3,
        )
        assert points[1].mean_q >= points[0].mean_q

    def test_overhead_free_never_hurts(self):
        """Within the paper's model, finer NPRs cannot reduce acceptance."""
        points = run_split_sweep(
            m=2, utilization=1.0, thresholds=[1000.0, 10.0],
            n_tasksets=8, seed=4, overhead=0.0,
        )
        assert points[1].ratio >= points[0].ratio - 1e-9

    def test_overhead_inflates_mean_utilization(self):
        free = run_split_sweep(
            m=2, utilization=1.0, thresholds=[10.0], n_tasksets=5,
            seed=3, overhead=0.0,
        )
        costly = run_split_sweep(
            m=2, utilization=1.0, thresholds=[10.0], n_tasksets=5,
            seed=3, overhead=2.0,
        )
        assert costly[0].mean_utilization > free[0].mean_utilization

    def test_empty_thresholds_rejected(self):
        with pytest.raises(AnalysisError):
            run_split_sweep(m=2, utilization=1.0, thresholds=[], n_tasksets=3)
