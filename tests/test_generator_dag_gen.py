"""Unit tests for :mod:`repro.generator.dag_gen`."""

import numpy as np
import pytest

from repro.generator import DagProfile, random_dag, sequential_dag
from repro.graph import longest_path_nodes, max_parallelism
from repro.model.validation import validate_openmp_style


class TestRandomDag:
    @pytest.mark.parametrize("seed", range(20))
    def test_structural_invariants(self, seed):
        rng = np.random.default_rng(seed)
        profile = DagProfile()
        dag = random_dag(rng, profile)
        assert 1 <= len(dag) <= profile.max_nodes
        validate_openmp_style(dag)
        assert len(longest_path_nodes(dag)) <= profile.max_path_nodes
        for node in dag.nodes:
            assert profile.wcet_min <= node.wcet <= profile.wcet_max
            assert float(node.wcet).is_integer()

    def test_root_forks_by_default(self, rng):
        for _ in range(20):
            dag = random_dag(rng, DagProfile())
            assert len(dag) >= 4
            assert len(dag.successors(dag.sources[0])) >= 2

    def test_root_fork_disabled(self):
        rng = np.random.default_rng(0)
        sizes = {len(random_dag(rng, DagProfile(root_forks=False))) for _ in range(50)}
        assert 1 in sizes  # terminal roots appear with p_term = 0.4

    def test_path_bound_respected_tightly(self, rng):
        profile = DagProfile(max_path_nodes=3)
        for _ in range(20):
            dag = random_dag(rng, profile)
            assert len(longest_path_nodes(dag)) <= 3

    def test_node_cap_respected(self, rng):
        profile = DagProfile(max_nodes=10)
        for _ in range(30):
            assert len(random_dag(rng, profile)) <= 10

    def test_parallelism_reachable(self, rng):
        widths = [max_parallelism(random_dag(rng, DagProfile())) for _ in range(30)]
        assert max(widths) >= 3  # npar=6 should produce wide graphs

    def test_deterministic_given_seed(self):
        a = random_dag(np.random.default_rng(7), DagProfile())
        b = random_dag(np.random.default_rng(7), DagProfile())
        assert a == b

    def test_name_prefix(self, rng):
        dag = random_dag(rng, DagProfile(), name_prefix="w")
        assert all(n.startswith("w") for n in dag.node_names)


class TestSequentialDag:
    @pytest.mark.parametrize("seed", range(10))
    def test_is_chain(self, seed):
        rng = np.random.default_rng(seed)
        profile = DagProfile()
        dag = sequential_dag(rng, profile)
        assert profile.seq_min_nodes <= len(dag) <= profile.seq_max_nodes
        assert max_parallelism(dag) == 1
        assert dag.volume == sum(n.wcet for n in dag.nodes)
        assert len(longest_path_nodes(dag)) == len(dag)

    def test_single_node_chain(self):
        rng = np.random.default_rng(0)
        profile = DagProfile(seq_min_nodes=1, seq_max_nodes=1)
        dag = sequential_dag(rng, profile)
        assert len(dag) == 1
