"""Unit tests for :mod:`repro.generator.profiles`."""

import pytest

from repro.exceptions import GenerationError
from repro.generator import GROUP1, GROUP2, DagProfile, TasksetProfile


class TestDagProfile:
    def test_paper_defaults(self):
        profile = DagProfile()
        assert profile.p_term == 0.4
        assert profile.p_par == 0.6
        assert profile.n_par_max == 6
        assert profile.max_path_nodes == 7
        assert profile.max_nodes == 30
        assert (profile.wcet_min, profile.wcet_max) == (1, 100)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(GenerationError, match="must equal 1"):
            DagProfile(p_term=0.5, p_par=0.6)

    def test_npar_minimum(self):
        with pytest.raises(GenerationError, match="n_par_max"):
            DagProfile(n_par_max=1)

    def test_wcet_range_validated(self):
        with pytest.raises(GenerationError, match="wcet"):
            DagProfile(wcet_min=10, wcet_max=5)
        with pytest.raises(GenerationError, match="wcet"):
            DagProfile(wcet_min=0)

    def test_sequential_probability_bounds(self):
        with pytest.raises(GenerationError, match="sequential_probability"):
            DagProfile(sequential_probability=1.5)

    def test_seq_nodes_clamped_to_max_nodes(self):
        profile = DagProfile(max_nodes=10)
        assert profile.seq_max_nodes == 10
        assert profile.seq_min_nodes == 5
        tight = DagProfile(max_nodes=3)
        assert tight.seq_max_nodes == 3
        assert tight.seq_min_nodes == 3

    def test_seq_nodes_validated(self):
        with pytest.raises(GenerationError, match="seq_min_nodes"):
            DagProfile(seq_min_nodes=0, seq_max_nodes=0)

    def test_max_nesting(self):
        assert DagProfile(max_path_nodes=7).max_nesting == 3
        assert DagProfile(max_path_nodes=1).max_nesting == 0
        assert DagProfile(max_path_nodes=2).max_nesting == 0
        assert DagProfile(max_path_nodes=5).max_nesting == 2


class TestTasksetProfile:
    def test_groups(self):
        assert GROUP1.dag.sequential_probability == 0.5
        assert GROUP2.dag.sequential_probability == 0.0
        assert GROUP1.beta == 0.5

    def test_beta_validated(self):
        with pytest.raises(GenerationError, match="beta"):
            TasksetProfile(dag=DagProfile(), beta=0.0)

    def test_u_task_max_validated(self):
        with pytest.raises(GenerationError, match="u_task_max"):
            TasksetProfile(dag=DagProfile(), beta=0.5, u_task_max=0.4)

    def test_mode_validated(self):
        with pytest.raises(GenerationError, match="utilization_mode"):
            TasksetProfile(dag=DagProfile(), utilization_mode="magic")
