"""Unit tests for :mod:`repro.generator.taskset_gen` and utilization/periods."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.generator import (
    GROUP1,
    GROUP2,
    assign_priorities_dm,
    draw_task_utilization,
    generate_task,
    generate_taskset,
)
from repro.generator.periods import log_uniform_period, period_from_utilization
from repro.generator.profiles import DagProfile, TasksetProfile
from repro.generator.utilization import utilization_ceiling
from repro.model import DAGTask, DagBuilder


class TestUtilizationDraw:
    def test_beta_scaled_chain_pinned_at_beta(self, chain, rng):
        # chain: vol == L, so ceiling = beta.
        assert draw_task_utilization(rng, chain, GROUP1) == GROUP1.beta

    def test_beta_scaled_ceiling(self, diamond):
        # diamond: vol=10, L=8 -> ceiling = 0.5 * 10/8 = 0.625
        assert utilization_ceiling(diamond, GROUP1) == pytest.approx(0.625)

    def test_uniform_mode_ceiling(self, diamond):
        profile = TasksetProfile(
            dag=DagProfile(), utilization_mode="uniform", u_task_max=2.0
        )
        # min(2.0, vol/L) = 1.25
        assert utilization_ceiling(diamond, profile) == pytest.approx(1.25)

    def test_hard_cap_applies(self, diamond):
        profile = TasksetProfile(dag=DagProfile(), u_task_max=0.55)
        assert utilization_ceiling(diamond, profile) == pytest.approx(0.55)

    def test_draw_within_bounds(self, diamond, rng):
        for _ in range(50):
            u = draw_task_utilization(rng, diamond, GROUP1)
            assert GROUP1.beta <= u <= 0.625 + 1e-12


class TestPeriods:
    def test_period_from_utilization(self, diamond):
        assert period_from_utilization(diamond, 0.5) == pytest.approx(20.0)

    def test_bad_utilization(self, diamond):
        with pytest.raises(GenerationError):
            period_from_utilization(diamond, 0.0)

    def test_log_uniform_bounds(self, rng):
        for _ in range(50):
            p = log_uniform_period(rng, 10.0, 1000.0)
            assert 10.0 <= p <= 1000.0

    def test_log_uniform_validation(self, rng):
        with pytest.raises(GenerationError):
            log_uniform_period(rng, 10.0, 5.0)
        with pytest.raises(GenerationError):
            log_uniform_period(rng, 0.0, 5.0)


class TestGenerateTask:
    def test_task_valid(self, rng):
        task = generate_task(rng, GROUP1, name="x")
        assert task.name == "x"
        assert task.deadline == task.period  # implicit deadlines
        assert task.longest_path <= task.deadline

    def test_group2_never_sequential(self, rng):
        for _ in range(30):
            task = generate_task(rng, GROUP2)
            # Parallel profile DAGs always fork at the root.
            assert len(task.graph.successors(task.graph.sources[0])) >= 2


class TestGenerateTaskset:
    @pytest.mark.parametrize("target", [0.5, 1.0, 2.0, 4.0])
    def test_total_utilization_exact(self, rng, target):
        ts = generate_taskset(rng, target, GROUP1)
        assert ts.total_utilization == pytest.approx(target)

    def test_priorities_are_dense_from_zero(self, rng):
        ts = generate_taskset(rng, 3.0, GROUP1)
        assert sorted(t.priority for t in ts) == list(range(len(ts)))

    def test_deadline_monotonic_order(self, rng):
        ts = generate_taskset(rng, 3.0, GROUP1)
        deadlines = [t.deadline for t in ts]
        assert deadlines == sorted(deadlines)

    def test_target_must_be_positive(self, rng):
        with pytest.raises(GenerationError):
            generate_taskset(rng, 0.0, GROUP1)

    def test_deterministic_given_seed(self):
        a = generate_taskset(np.random.default_rng(5), 2.0, GROUP1)
        b = generate_taskset(np.random.default_rng(5), 2.0, GROUP1)
        assert a.names == b.names
        assert [t.period for t in a] == [t.period for t in b]

    def test_small_target_single_task(self, rng):
        ts = generate_taskset(rng, 0.1, GROUP1)
        assert len(ts) == 1
        assert ts.total_utilization == pytest.approx(0.1)


class TestPriorityAssignment:
    def test_dm_with_tie_break(self):
        d1 = DagBuilder().node("a", 10).build()
        d2 = DagBuilder().node("b", 20).build()
        t1 = DAGTask("small", d1, period=50.0)
        t2 = DAGTask("large", d2, period=50.0)
        ts = assign_priorities_dm([t1, t2])
        # Same deadline: larger volume first.
        assert ts.names == ("large", "small")

    def test_empty_rejected(self):
        with pytest.raises(GenerationError):
            assign_priorities_dm([])
