"""Unit tests for :mod:`repro.graph.parallel` (the paper's Algorithm 1)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    algorithm1_par_sets,
    is_parallel,
    par_sets_oracle,
    parallel_pairs,
    parallelism_graph,
)
from repro.model import DagBuilder


class TestOracle:
    def test_diamond(self, diamond):
        par = par_sets_oracle(diamond)
        assert par["a"] == {"b"}
        assert par["b"] == {"a"}
        assert par["s"] == frozenset()
        assert par["t"] == frozenset()

    def test_chain_has_no_parallelism(self, chain):
        par = par_sets_oracle(chain)
        assert all(not s for s in par.values())

    def test_isolated_nodes_all_parallel(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1, "c": 1}).build()
        par = par_sets_oracle(dag)
        assert par["a"] == {"b", "c"}

    def test_symmetry(self, fig1_tau1):
        par = par_sets_oracle(fig1_tau1)
        for v, others in par.items():
            for w in others:
                assert v in par[w]


class TestPaperWalkthrough:
    """The Par sets the paper computes step by step in Section V-A1."""

    def test_par_v13(self, fig1_tau1):
        par = algorithm1_par_sets(fig1_tau1)
        assert par["v1,3"] == {"v1,2", "v1,4", "v1,5", "v1,7"}

    def test_par_v11_empty(self, fig1_tau1):
        par = algorithm1_par_sets(fig1_tau1)
        assert par["v1,1"] == frozenset()

    def test_par_v17(self, fig1_tau1):
        # The text derives {v1,2, v1,3, v1,6} via the second loop.
        par = algorithm1_par_sets(fig1_tau1)
        assert par["v1,7"] == {"v1,2", "v1,3", "v1,6"}

    def test_tau4_v41_v44_not_parallel(self, fig1_tau4):
        # The pessimism example of Section IV-B3.
        assert not is_parallel(fig1_tau4, "v4,1", "v4,4")


class TestAlgorithm1VsOracle:
    def test_matches_on_fig1(self, fig1_tau1, fig1_tau2, fig1_tau3, fig1_tau4):
        for dag in (fig1_tau1, fig1_tau2, fig1_tau3, fig1_tau4):
            assert algorithm1_par_sets(dag) == par_sets_oracle(dag)

    def test_direct_edge_check_miscounts_sibling_paths(self):
        """The paper's literal line-5 test can overcount (see DESIGN.md).

        In ``v0 -> a, b; a -> c -> b`` the siblings a and b are connected
        through c, so they are *not* parallel; the "direct" variant
        misses that, the default "path" variant does not.
        """
        dag = (
            DagBuilder()
            .nodes({"v0": 1, "a": 1, "b": 1, "c": 1})
            .fork("v0", ["a", "b"])
            .chain("a", "c", "b")
            .build()
        )
        literal = algorithm1_par_sets(dag, edge_check="direct")
        corrected = algorithm1_par_sets(dag, edge_check="path")
        oracle = par_sets_oracle(dag)
        assert corrected == oracle
        assert "b" in literal["a"]          # the overcount
        assert "b" not in oracle["a"]

    def test_invalid_edge_check(self, diamond):
        with pytest.raises(GraphError, match="edge_check"):
            algorithm1_par_sets(diamond, edge_check="bogus")  # type: ignore[arg-type]


class TestPairsAndGraph:
    def test_parallel_pairs_diamond(self, diamond):
        assert parallel_pairs(diamond) == {frozenset(("a", "b"))}

    def test_is_parallel_validates(self, diamond):
        with pytest.raises(GraphError, match="identical"):
            is_parallel(diamond, "a", "a")

    def test_parallelism_graph_structure(self, fig1_tau3):
        graph = parallelism_graph(fig1_tau3)
        assert set(graph.nodes) == set(fig1_tau3.node_names)
        # The fan-out leaves form a clique; the source is isolated.
        leaves = ["v3,2", "v3,3", "v3,4", "v3,5"]
        for i, u in enumerate(leaves):
            for v in leaves[i + 1 :]:
                assert graph.has_edge(u, v)
        assert graph.degree("v3,1") == 0

    def test_parallelism_graph_weights(self, diamond):
        graph = parallelism_graph(diamond)
        assert graph.nodes["b"]["wcet"] == 3
