"""Unit tests for :mod:`repro.graph.paths`."""

import pytest

from repro.graph import longest_path_length, longest_path_nodes, volume
from repro.model import DagBuilder


class TestVolume:
    def test_diamond(self, diamond):
        assert volume(diamond) == 10

    def test_single(self, single_node):
        assert volume(single_node) == 9


class TestLongestPath:
    def test_diamond_takes_heavier_branch(self, diamond):
        # s(1) -> b(3) -> t(4) = 8 beats s -> a(2) -> t = 7
        assert longest_path_length(diamond) == 8

    def test_chain_equals_volume(self, chain):
        assert longest_path_length(chain) == 14

    def test_single_node(self, single_node):
        assert longest_path_length(single_node) == 9

    def test_parallel_only(self):
        dag = DagBuilder().nodes({"a": 3, "b": 7, "c": 5}).build()
        assert longest_path_length(dag) == 7

    def test_fig1_tau1(self, fig1_tau1):
        # v1,1(1) -> v1,4(2) -> v1,7(2) -> v1,8(3) = 8
        assert longest_path_length(fig1_tau1) == 8

    def test_fig1_tau4(self, fig1_tau4):
        # v4,1(5) -> v4,2(1) -> v4,4(5) = 11
        assert longest_path_length(fig1_tau4) == 11


class TestLongestPathNodes:
    def test_length_matches(self, diamond, chain, fig1_tau1, fig1_tau4):
        for dag in (diamond, chain, fig1_tau1, fig1_tau4):
            nodes = longest_path_nodes(dag)
            assert sum(dag.wcet(n) for n in nodes) == pytest.approx(
                longest_path_length(dag)
            )

    def test_is_a_real_path(self, fig1_tau1):
        nodes = longest_path_nodes(fig1_tau1)
        for u, v in zip(nodes, nodes[1:]):
            assert fig1_tau1.has_edge(u, v)

    def test_empty_graph(self):
        from repro.model.dag import DAG

        assert longest_path_nodes(DAG({})) == ()
