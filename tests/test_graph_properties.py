"""Unit tests for :mod:`repro.graph.properties`."""

import pytest

from repro.exceptions import GraphError
from repro.graph import antichains, is_antichain, max_parallelism
from repro.model import DagBuilder
from repro.model.dag import DAG


class TestIsAntichain:
    def test_parallel_pair(self, diamond):
        assert is_antichain(diamond, ["a", "b"])

    def test_ordered_pair(self, diamond):
        assert not is_antichain(diamond, ["s", "a"])

    def test_empty_and_singleton(self, diamond):
        assert is_antichain(diamond, [])
        assert is_antichain(diamond, ["s"])

    def test_duplicates_rejected(self, diamond):
        with pytest.raises(GraphError, match="duplicate"):
            is_antichain(diamond, ["a", "a"])


class TestAntichainEnumeration:
    def test_diamond_antichains(self, diamond):
        chains = set(antichains(diamond))
        assert ("a", "b") in chains or ("b", "a") in chains
        singletons = {c for c in chains if len(c) == 1}
        assert len(singletons) == 4
        assert all(len(c) <= 2 for c in chains)

    def test_max_size_respected(self, fig1_tau3):
        assert all(len(c) <= 2 for c in antichains(fig1_tau3, max_size=2))

    def test_every_emitted_set_is_antichain(self, fig1_tau1):
        for chain in antichains(fig1_tau1, max_size=3):
            assert is_antichain(fig1_tau1, chain)

    def test_count_on_chain(self, chain):
        # Only singletons on a chain.
        assert sorted(antichains(chain)) == [("a",), ("b",), ("c",)]


class TestWidth:
    def test_diamond(self, diamond):
        assert max_parallelism(diamond) == 2

    def test_chain(self, chain):
        assert max_parallelism(chain) == 1

    def test_isolated(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1, "c": 1}).build()
        assert max_parallelism(dag) == 3

    def test_empty(self):
        assert max_parallelism(DAG({})) == 0

    def test_fig1_widths(self, fig1_tau1, fig1_tau2, fig1_tau3, fig1_tau4):
        # These drive which mu entries are zero in Table I.
        assert max_parallelism(fig1_tau1) == 4
        assert max_parallelism(fig1_tau2) == 2
        assert max_parallelism(fig1_tau3) == 4
        assert max_parallelism(fig1_tau4) == 3

    def test_matches_enumeration_on_small_graphs(
        self, diamond, chain, fig1_tau1, fig1_tau2, fig1_tau4
    ):
        for dag in (diamond, chain, fig1_tau1, fig1_tau2, fig1_tau4):
            brute = max(len(c) for c in antichains(dag))
            assert max_parallelism(dag) == brute
