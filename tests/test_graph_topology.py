"""Unit tests for :mod:`repro.graph.topology`."""

from repro.graph import (
    ancestors_map,
    descendants_map,
    reachable_from,
    topological_order,
)
from repro.model import DagBuilder


class TestReachability:
    def test_diamond(self, diamond):
        assert reachable_from(diamond, "s") == {"a", "b", "t"}
        assert reachable_from(diamond, "a") == {"t"}
        assert reachable_from(diamond, "t") == frozenset()

    def test_descendants_map_matches_per_node(self, diamond, fig1_tau1):
        for dag in (diamond, fig1_tau1):
            succ = descendants_map(dag)
            for node in dag.node_names:
                assert succ[node] == reachable_from(dag, node)

    def test_ancestors_map_is_inverse(self, fig1_tau1):
        succ = descendants_map(fig1_tau1)
        pred = ancestors_map(fig1_tau1)
        for u in fig1_tau1.node_names:
            for v in fig1_tau1.node_names:
                assert (v in succ[u]) == (u in pred[v])

    def test_paper_succ_examples(self, fig1_tau1):
        """The SUCC sets quoted in the paper's Algorithm-1 walkthrough."""
        succ = descendants_map(fig1_tau1)
        assert succ["v1,2"] == {"v1,6", "v1,8"}
        assert succ["v1,4"] == {"v1,7", "v1,8"}
        assert succ["v1,5"] == {"v1,7", "v1,8"}


class TestTopologicalOrder:
    def test_respects_edges(self, fig1_tau1):
        order = topological_order(fig1_tau1)
        position = {n: i for i, n in enumerate(order)}
        for u, v in fig1_tau1.edges:
            assert position[u] < position[v]

    def test_chain_order(self, chain):
        assert topological_order(chain) == ("a", "b", "c")

    def test_transitive_chain(self):
        # Redundant transitive edge must not break the order.
        dag = (
            DagBuilder()
            .nodes({"a": 1, "b": 1, "c": 1})
            .chain("a", "b", "c")
            .edge("a", "c")
            .build()
        )
        assert topological_order(dag) == ("a", "b", "c")
