"""Unit tests for :mod:`repro.ilp.model`."""

import pytest

from repro.exceptions import IlpError
from repro.ilp import BinaryProgram
from repro.ilp.model import Constraint


class TestProgramConstruction:
    def test_add_var(self):
        program = BinaryProgram()
        program.add_var("x", objective=2.0)
        assert program.variables == ("x",)
        assert program.objective_coefficient("x") == 2.0

    def test_duplicate_var_rejected(self):
        program = BinaryProgram()
        program.add_var("x")
        with pytest.raises(IlpError, match="duplicate"):
            program.add_var("x")

    def test_bad_var_name(self):
        with pytest.raises(IlpError, match="non-empty"):
            BinaryProgram().add_var("")

    def test_non_finite_objective(self):
        with pytest.raises(IlpError, match="non-finite"):
            BinaryProgram().add_var("x", objective=float("inf"))

    def test_unknown_objective_lookup(self):
        with pytest.raises(IlpError, match="unknown variable"):
            BinaryProgram().objective_coefficient("x")


class TestConstraints:
    def make(self):
        program = BinaryProgram()
        program.add_var("x", 1.0)
        program.add_var("y", 1.0)
        return program

    def test_valid_constraint(self):
        program = self.make()
        program.add_constraint({"x": 1, "y": 1}, "<=", 1)
        assert len(program.constraints) == 1

    def test_unknown_variable(self):
        with pytest.raises(IlpError, match="unknown variable"):
            self.make().add_constraint({"z": 1}, "<=", 1)

    def test_bad_sense(self):
        with pytest.raises(IlpError, match="invalid sense"):
            self.make().add_constraint({"x": 1}, "<", 1)  # type: ignore[arg-type]

    def test_empty_coeffs(self):
        with pytest.raises(IlpError, match="empty coefficient"):
            self.make().add_constraint({}, "<=", 1)

    def test_all_zero_coeffs(self):
        with pytest.raises(IlpError, match="all coefficients are zero"):
            self.make().add_constraint({"x": 0.0}, "<=", 1)

    def test_non_finite_rhs(self):
        with pytest.raises(IlpError, match="non-finite rhs"):
            self.make().add_constraint({"x": 1}, "<=", float("nan"))


class TestEvaluation:
    def test_evaluate(self):
        program = BinaryProgram()
        program.add_var("x", 2.0)
        program.add_var("y", 3.0)
        assert program.evaluate({"x": 1, "y": 0}) == 2.0
        assert program.evaluate({"x": 1, "y": 1}) == 5.0

    def test_evaluate_missing_var(self):
        program = BinaryProgram()
        program.add_var("x", 2.0)
        with pytest.raises(IlpError, match="missing"):
            program.evaluate({})

    def test_is_feasible(self):
        program = BinaryProgram()
        program.add_var("x", 1.0)
        program.add_var("y", 1.0)
        program.add_constraint({"x": 1, "y": 1}, "<=", 1)
        assert program.is_feasible({"x": 1, "y": 0})
        assert not program.is_feasible({"x": 1, "y": 1})


class TestConstraintRanges:
    def test_lhs_range_all_free(self):
        c = Constraint((("x", 2.0), ("y", -1.0)), "<=", 1.0)
        assert c.lhs_range({}) == (-1.0, 2.0)

    def test_lhs_range_partially_fixed(self):
        c = Constraint((("x", 2.0), ("y", -1.0)), "<=", 1.0)
        assert c.lhs_range({"x": 1}) == (1.0, 2.0)
        assert c.lhs_range({"x": 1, "y": 1}) == (1.0, 1.0)

    def test_satisfaction_senses(self):
        le = Constraint((("x", 1.0),), "<=", 0.0)
        ge = Constraint((("x", 1.0),), ">=", 1.0)
        eq = Constraint((("x", 1.0),), "==", 1.0)
        assert le.is_satisfied({"x": 0})
        assert not le.is_satisfied({"x": 1})
        assert ge.is_satisfied({"x": 1})
        assert not ge.is_satisfied({"x": 0})
        assert eq.is_satisfied({"x": 1})
        assert not eq.is_satisfied({"x": 0})
