"""Unit tests for :mod:`repro.ilp.solver`, incl. brute-force cross-checks."""

from itertools import product

import numpy as np
import pytest

from repro.exceptions import IlpError
from repro.ilp import BinaryProgram, IlpStatus, solve


def brute_force(program: BinaryProgram) -> tuple[float | None, int]:
    """Exhaustive optimum (None if infeasible) and feasible count."""
    best = None
    feasible = 0
    variables = program.variables
    for bits in product((0, 1), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if program.is_feasible(assignment):
            feasible += 1
            value = program.evaluate(assignment)
            if best is None:
                best = value
            elif program.maximize:
                best = max(best, value)
            else:
                best = min(best, value)
    return best, feasible


class TestBasics:
    def test_unconstrained_maximize(self):
        program = BinaryProgram()
        program.add_var("x", 3.0)
        program.add_var("y", -2.0)
        solution = solve(program)
        assert solution.is_optimal
        assert solution.objective == 3.0
        assert solution.assignment == {"x": 1, "y": 0}

    def test_unconstrained_minimize(self):
        program = BinaryProgram(maximize=False)
        program.add_var("x", 3.0)
        program.add_var("y", -2.0)
        solution = solve(program)
        assert solution.objective == -2.0
        assert solution.assignment == {"x": 0, "y": 1}

    def test_knapsack_equality(self):
        program = BinaryProgram()
        for name, value in [("a", 10.0), ("b", 7.0), ("c", 3.0)]:
            program.add_var(name, value)
        program.add_constraint({"a": 1, "b": 1, "c": 1}, "==", 2)
        solution = solve(program)
        assert solution.objective == 17.0
        assert solution.selected() == ("a", "b")

    def test_infeasible(self):
        program = BinaryProgram()
        program.add_var("x", 1.0)
        program.add_constraint({"x": 1}, ">=", 2)
        solution = solve(program)
        assert solution.status is IlpStatus.INFEASIBLE
        assert not solution.is_optimal

    def test_empty_program_rejected(self):
        with pytest.raises(IlpError, match="no variables"):
            solve(BinaryProgram())

    def test_node_limit(self):
        program = BinaryProgram()
        for i in range(12):
            program.add_var(f"x{i}", 1.0)
        # All-equal objective defeats the bound prune; tiny limit trips.
        with pytest.raises(IlpError, match="node limit"):
            solve(program, node_limit=3)

    def test_nodes_explored_reported(self):
        program = BinaryProgram()
        program.add_var("x", 1.0)
        assert solve(program).nodes_explored > 0


class TestConflictStructure:
    def test_pairwise_conflicts(self):
        """Max-weight independent set on a path graph a-b-c."""
        program = BinaryProgram()
        for name, value in [("a", 4.0), ("b", 5.0), ("c", 4.0)]:
            program.add_var(name, value)
        program.add_constraint({"a": 1, "b": 1}, "<=", 1)
        program.add_constraint({"b": 1, "c": 1}, "<=", 1)
        solution = solve(program)
        assert solution.objective == 8.0
        assert solution.selected() == ("a", "c")

    def test_ge_constraint_forces_selection(self):
        program = BinaryProgram()
        program.add_var("cheap", -5.0)
        program.add_var("rich", -1.0)
        program.add_constraint({"cheap": 1, "rich": 1}, ">=", 1)
        solution = solve(program)
        assert solution.objective == -1.0
        assert solution.selected() == ("rich",)


class TestRandomCrossCheck:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        program = BinaryProgram(maximize=bool(rng.integers(0, 2)))
        for i in range(n):
            program.add_var(f"x{i}", float(rng.normal(0, 5)))
        for _ in range(int(rng.integers(1, 5))):
            support = rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False)
            coeffs = {f"x{i}": float(rng.integers(-3, 4)) for i in support}
            coeffs = {k: v for k, v in coeffs.items() if v != 0}
            if not coeffs:
                continue
            sense = ["<=", "==", ">="][int(rng.integers(0, 3))]
            rhs = float(rng.integers(-2, 5))
            program.add_constraint(coeffs, sense, rhs)  # type: ignore[arg-type]
        expected, _ = brute_force(program)
        solution = solve(program)
        if expected is None:
            assert solution.status is IlpStatus.INFEASIBLE
        else:
            assert solution.is_optimal
            assert solution.objective == pytest.approx(expected)
            assert program.is_feasible(solution.assignment)
