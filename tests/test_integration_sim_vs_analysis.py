"""Integration: the RTA bounds must dominate observed response times.

For every task-set the analysis deems schedulable, simulate legal
release patterns and check no observed response exceeds the analytic
bound (and no deadline is missed). This is the soundness property an
RTA implicitly promises; a violation here means an implementation bug
in either the analysis or the simulator.
"""

import numpy as np
import pytest

from repro.core import AnalysisMethod, analyze_taskset
from repro.generator import GROUP1, GROUP2, generate_taskset
from repro.sim import simulate, sporadic_releases, synchronous_periodic_releases

#: (profile, m, target utilization) combinations exercised.
CASES = [
    (GROUP1, 2, 1.0),
    (GROUP1, 4, 1.5),
    (GROUP1, 4, 2.0),
    (GROUP2, 4, 2.0),
    (GROUP2, 8, 3.0),
]


@pytest.mark.parametrize("profile,m,target", CASES)
def test_lp_ilp_bounds_dominate_synchronous_sim(profile, m, target):
    rng = np.random.default_rng(hash((m, target)) % (2**32))
    checked = 0
    for _ in range(20):
        taskset = generate_taskset(rng, target, profile)
        analysis = analyze_taskset(taskset, m, AnalysisMethod.LP_ILP)
        if not analysis.schedulable:
            continue
        horizon = 3.0 * max(t.period for t in taskset)
        result = simulate(
            taskset, m, synchronous_periodic_releases(taskset, horizon)
        )
        assert result.all_deadlines_met, "analysis said schedulable, sim missed"
        for name, bound in analysis.responses.items():
            assert result.max_response(name) <= bound + 1e-6, (
                f"task {name}: observed {result.max_response(name)} "
                f"exceeds bound {bound}"
            )
        checked += 1
    assert checked > 0, "no schedulable sample generated; adjust CASES"


@pytest.mark.parametrize("profile,m,target", CASES[:3])
def test_lp_max_bounds_dominate_sporadic_sim(profile, m, target):
    rng = np.random.default_rng(hash(("sporadic", m, target)) % (2**32))
    checked = 0
    for _ in range(15):
        taskset = generate_taskset(rng, target, profile)
        analysis = analyze_taskset(taskset, m, AnalysisMethod.LP_MAX)
        if not analysis.schedulable:
            continue
        horizon = 3.0 * max(t.period for t in taskset)
        releases = sporadic_releases(rng, taskset, horizon, max_jitter=0.3)
        result = simulate(taskset, m, releases)
        assert result.all_deadlines_met
        for name, bound in analysis.responses.items():
            assert result.max_response(name) <= bound + 1e-6
        checked += 1
    assert checked > 0


def test_fp_ideal_is_not_sound_for_lp_scheduling():
    """FP-ideal ignores blocking, so an LP simulation *can* exceed its
    bounds — this documents why the paper needs the LP analysis at all.

    We construct the classical counterexample: a tiny high-priority
    task blocked by a just-started huge NPR of a low-priority task.
    """
    from repro.model import DAGTask, DagBuilder, TaskSet

    hi = DAGTask(
        "hi", DagBuilder().node("h", 2).build(), period=50.0, priority=0
    )
    lo = DAGTask(
        "lo", DagBuilder().node("l", 40).build(), period=100.0, priority=1
    )
    taskset = TaskSet([hi, lo])
    analysis = analyze_taskset(taskset, 1, AnalysisMethod.FP_IDEAL)
    assert analysis.schedulable
    assert analysis.task("hi").response == 2.0
    # lo starts epsilon before hi's release: hi observes 41 > 2.
    result = simulate(taskset, 1, [(0.0, "lo"), (1.0, "hi")])
    assert result.max_response("hi") > analysis.task("hi").response
    # The LP analyses account for it.
    lp = analyze_taskset(taskset, 1, AnalysisMethod.LP_ILP)
    assert result.max_response("hi") <= lp.task("hi").response
