"""repro-lint self-tests.

Covers the fixture corpus (one flagged + one clean module per rule —
the meta-test enforces the pair exists, alongside a docstring, for
every registered rule), the module-classification layer (role globs
and ``imports:`` patterns through the import graph), suppression
comments, the baseline round-trip, the CLI surface, and — the real
gate — that the repo's own ``src/`` tree lints clean under the
checked-in config and baseline.
"""

import ast
import dataclasses
import json
from collections import Counter
from pathlib import Path

import pytest

from repro.exceptions import LintError
from repro.lint import (
    RULES,
    Baseline,
    ImportGraph,
    LintConfig,
    ModuleClassifier,
    lint_paths,
    load_baseline,
    load_config,
    module_name_for,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.engine import parse_suppressions

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: rule code -> findings its flagged fixture must produce.  Keeping
#: this table in sync with the registry is itself asserted below.
EXPECTED_FLAGGED = {
    "DET001": 4,
    "DET002": 5,
    "DET003": 3,
    "DET004": 2,
    "ERR001": 2,
    "ERR002": 3,
    "IO001": 3,
    "IO002": 1,
    "IO003": 2,
}


@pytest.fixture(scope="module")
def fixture_config():
    return load_config(FIXTURES)


def _lint(config, *names):
    return lint_paths([FIXTURES / name for name in names], config)


class TestRuleRegistryMeta:
    def test_fixture_table_matches_registry(self):
        assert set(EXPECTED_FLAGGED) == set(RULES)

    def test_every_rule_has_docstring_and_fixture_pair(self):
        for code, rule in sorted(RULES.items()):
            doc = type(rule).__doc__ or ""
            assert code in doc, f"{code} docstring must open with its code"
            assert len(doc.strip()) > 100, f"{code} docstring too thin"
            for suffix in ("flagged", "clean"):
                fixture = FIXTURES / f"{code.lower()}_{suffix}.py"
                assert fixture.is_file(), f"missing fixture {fixture.name}"

    def test_rules_have_distinct_names(self):
        names = [rule.name for rule in RULES.values()]
        assert len(names) == len(set(names))
        assert all(names)


class TestFixtureCorpus:
    @pytest.mark.parametrize("code", sorted(EXPECTED_FLAGGED))
    def test_flagged_fixture_fires(self, fixture_config, code):
        findings, suppressed = _lint(
            fixture_config, f"{code.lower()}_flagged.py"
        )
        assert suppressed == 0
        assert {f.rule for f in findings} == {code}
        assert len(findings) == EXPECTED_FLAGGED[code]

    @pytest.mark.parametrize("code", sorted(EXPECTED_FLAGGED))
    def test_clean_fixture_is_silent(self, fixture_config, code):
        findings, suppressed = _lint(
            fixture_config, f"{code.lower()}_clean.py"
        )
        assert findings == []
        assert suppressed == 0

    def test_whole_corpus_totals(self, fixture_config):
        findings, suppressed = lint_paths([FIXTURES], fixture_config)
        assert Counter(f.rule for f in findings) == Counter(EXPECTED_FLAGGED)
        assert suppressed == 0

    def test_io002_flags_the_module_once_at_line_one(self, fixture_config):
        findings, _ = _lint(fixture_config, "io002_flagged.py")
        (finding,) = findings
        assert finding.line == 1
        assert finding.path == "io002_flagged.py"
        assert "FORMAT_VERSION" in finding.message

    def test_findings_render_and_serialise(self, fixture_config):
        findings, _ = _lint(fixture_config, "det001_flagged.py")
        first = findings[0]
        assert first.render().startswith("det001_flagged.py:")
        payload = first.to_json()
        assert payload["rule"] == "DET001"
        assert payload["line_text"] == first.line_text


class TestClassification:
    def test_module_names(self):
        assert (
            module_name_for(
                REPO_ROOT / "src/repro/engine/shard.py", REPO_ROOT, ("src",)
            )
            == "repro.engine.shard"
        )
        assert (
            module_name_for(FIXTURES / "io001_flagged.py", FIXTURES, ())
            == "io001_flagged"
        )

    def test_imports_pattern_carries_role_through_graph(self, fixture_config):
        graph = ImportGraph()
        for name in ("io001_flagged.py", "err002_flagged.py"):
            path = FIXTURES / name
            graph.add_module(
                module_name_for(path, FIXTURES, ()),
                ast.parse(path.read_text()),
            )
        classifier = ModuleClassifier(fixture_config.roles, graph)
        # io001_flagged imports fixture_contracts -> artifact-writers.
        assert "artifact-writers" in classifier.roles_for("io001_flagged")
        # err002_flagged does not -> no writer role.
        assert "artifact-writers" not in classifier.roles_for("err002_flagged")

    def test_seed_paths_role_exempts_det002(self):
        config = LintConfig(
            root=FIXTURES,
            source_roots=(),
            roles={"seed-paths": ("det002_*",)},
        )
        findings, _ = _lint(config, "det002_flagged.py")
        assert findings == []

    def test_telemetry_role_exempts_det004(self):
        config = LintConfig(
            root=FIXTURES,
            source_roots=(),
            roles={
                "artifact-writers": ("det004_*",),
                "telemetry": ("det004_*",),
            },
        )
        findings, _ = _lint(config, "det004_flagged.py")
        assert findings == []

    def test_scoped_rules_stay_off_without_roles(self):
        config = LintConfig(root=FIXTURES, source_roots=(), roles={})
        findings, _ = _lint(config, "det003_flagged.py")
        assert findings == []


class TestConfig:
    def test_fixture_config_loads_from_standalone_toml(self, fixture_config):
        assert fixture_config.source_roots == ()
        assert fixture_config.roles["merge-paths"] == ("det003_*",)
        assert fixture_config.baseline is None

    def test_repo_config_loads_from_pyproject(self):
        config = load_config(REPO_ROOT)
        assert config.baseline == "lint-baseline.json"
        assert "src" in config.source_roots

    def test_unknown_keys_rejected(self, tmp_path):
        bad = tmp_path / "repro-lint.toml"
        bad.write_text("[tool.repro-lint]\ntypo-key = true\n")
        with pytest.raises(LintError, match="typo-key"):
            load_config(tmp_path)

    def test_non_list_role_rejected(self, tmp_path):
        bad = tmp_path / "repro-lint.toml"
        bad.write_text(
            "[tool.repro-lint.roles]\nmerge-paths = 'not-a-list'\n"
        )
        with pytest.raises(LintError, match="merge-paths"):
            load_config(tmp_path)

    def test_rule_option_overrides_allowed_raises(self, tmp_path):
        # Narrowing ERR001's allowed family makes AnalysisError a finding.
        config_file = tmp_path / "repro-lint.toml"
        config_file.write_text(
            "[tool.repro-lint]\nsource-roots = []\n"
            "[tool.repro-lint.roles]\npublic-paths = ['err001_*']\n"
            "[tool.repro-lint.rules.ERR001]\nallowed = ['JobSpecError']\n"
        )
        config = load_config(FIXTURES, explicit=config_file)
        findings, _ = _lint(config, "err001_clean.py")
        assert [f.rule for f in findings] == ["ERR001"]
        assert "AnalysisError" in findings[0].message


class TestSuppressions:
    def test_trailing_comment_suppresses_that_line(self):
        sup = parse_suppressions(
            ["x = p.glob('*')  # repro-lint: disable=DET001"]
        )
        assert sup.is_suppressed("DET001", 1)
        assert not sup.is_suppressed("DET002", 1)

    def test_standalone_comment_covers_next_line(self):
        sup = parse_suppressions(
            ["# repro-lint: disable=DET004, ERR002", "now = time.time()"]
        )
        assert sup.is_suppressed("DET004", 2)
        assert sup.is_suppressed("ERR002", 2)

    def test_disable_file(self):
        sup = parse_suppressions(
            ["# repro-lint: disable-file=IO001", "", "whatever = 1"]
        )
        assert sup.is_suppressed("IO001", 999)

    def test_marker_must_follow_the_hash(self):
        # Prose mentioning the tool is not a suppression.
        sup = parse_suppressions(
            ["x = 1  # silenced via repro-lint: disable=DET001 elsewhere"]
        )
        assert not sup.is_suppressed("DET001", 1)

    def test_empty_code_list_is_an_error(self):
        with pytest.raises(LintError, match="empty"):
            parse_suppressions(["# repro-lint: disable=  "])

    def test_end_to_end_inline_suppression(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "from pathlib import Path\n"
            "def stems(d: Path):\n"
            "    # hostless listing is fine here: entries are unlinked.\n"
            "    # repro-lint: disable=DET001\n"
            "    return [p.stem for p in d.glob('*')]\n"
        )
        config = LintConfig(root=tmp_path, source_roots=(), roles={})
        findings, suppressed = lint_paths([mod], config)
        assert findings == []
        assert suppressed == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "from pathlib import Path\n"
            "def stems(d: Path):\n"
            "    return [p.stem for p in d.glob('*')]  "
            "# repro-lint: disable=DET002\n"
        )
        config = LintConfig(root=tmp_path, source_roots=(), roles={})
        findings, suppressed = lint_paths([mod], config)
        assert [f.rule for f in findings] == ["DET001"]
        assert suppressed == 0


class TestBaseline:
    def test_round_trip_covers_everything(self, fixture_config, tmp_path):
        findings, _ = _lint(fixture_config, "det001_flagged.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert baseline.filter_new(findings) == []
        assert baseline.covered_count(findings) == len(findings)

    def test_line_moves_do_not_churn_the_baseline(
        self, fixture_config, tmp_path
    ):
        findings, _ = _lint(fixture_config, "det001_flagged.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        shifted = [
            dataclasses.replace(f, line=f.line + 40) for f in findings
        ]
        assert load_baseline(baseline_path).filter_new(shifted) == []

    def test_new_findings_exceed_the_budget(self, fixture_config, tmp_path):
        findings, _ = _lint(fixture_config, "det001_flagged.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings[:1])
        fresh = load_baseline(baseline_path).filter_new(findings)
        assert len(fresh) == len(findings) - 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json").entries == Counter()

    def test_version_skew_rejected(self, tmp_path):
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(LintError, match="version"):
            load_baseline(stale)

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(LintError, match="not a repro-lint baseline"):
            load_baseline(bad)
        bad.write_text(
            json.dumps({"version": 1, "findings": [{"rule": "DET001"}]})
        )
        with pytest.raises(LintError, match="malformed"):
            load_baseline(bad)


class TestCli:
    @pytest.fixture(autouse=True)
    def _in_fixture_dir(self, monkeypatch):
        monkeypatch.chdir(FIXTURES)

    def test_explain_prints_rule_doc(self, capsys):
        assert main(["--explain", "DET001"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "sorted" in out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert main(["--explain", "NOPE"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_lists_every_code(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_flagged_file_exits_one_with_json_report(self, capsys):
        assert main(["det001_flagged.py", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "repro-lint"
        assert report["counts"]["new"] == EXPECTED_FLAGGED["DET001"]
        assert report["counts"]["suppressed"] == 0
        assert {f["rule"] for f in report["findings"]} == {"DET001"}

    def test_clean_file_exits_zero(self, capsys):
        assert main(["det001_clean.py"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().err

    def test_report_file_is_written(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            ["det002_flagged.py", "--report", str(report_path)]
        )
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["counts"]["new"] == EXPECTED_FLAGGED["DET002"]

    def test_write_baseline_then_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "det003_flagged.py",
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Grandfathered: the same findings now gate to zero new.
        assert main(["det003_flagged.py", "--baseline", str(baseline)]) == 0
        # --no-baseline reports them all again.
        assert (
            main(
                [
                    "det003_flagged.py",
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["no-such-dir"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestRepoTreeIsClean:
    """The acceptance gate: the shipped tree lints clean in-process."""

    def test_src_lints_clean_under_checked_in_config(self):
        config = load_config(REPO_ROOT)
        findings, _ = lint_paths([REPO_ROOT / "src"], config)
        baseline = (
            load_baseline(REPO_ROOT / config.baseline)
            if config.baseline
            else Baseline()
        )
        fresh = baseline.filter_new(findings)
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_checked_in_baseline_is_empty(self):
        data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert data == {"version": 1, "findings": []}
