"""Unit tests for :mod:`repro.model.builder`."""

import pytest

from repro.exceptions import ModelError
from repro.model import DagBuilder


class TestBuilder:
    def test_node_and_edge(self):
        dag = DagBuilder().node("a", 1).node("b", 2).edge("a", "b").build()
        assert dag.has_edge("a", "b")
        assert dag.volume == 3

    def test_nodes_bulk(self):
        dag = DagBuilder().nodes({"a": 1, "b": 2, "c": 3}).build()
        assert dag.node_names == ("a", "b", "c")

    def test_chain(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1, "c": 1}).chain("a", "b", "c").build()
        assert dag.has_edge("a", "b")
        assert dag.has_edge("b", "c")
        assert not dag.has_edge("a", "c")

    def test_fork_join(self):
        dag = (
            DagBuilder()
            .nodes({"s": 1, "x": 1, "y": 1, "t": 1})
            .fork("s", ["x", "y"])
            .join(["x", "y"], "t")
            .build()
        )
        assert set(dag.successors("s")) == {"x", "y"}
        assert set(dag.predecessors("t")) == {"x", "y"}

    def test_edge_idempotent(self):
        dag = (
            DagBuilder()
            .nodes({"a": 1, "b": 1})
            .edge("a", "b")
            .edge("a", "b")
            .build()
        )
        assert dag.edges == (("a", "b"),)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ModelError, match="duplicate node"):
            DagBuilder().node("a", 1).node("a", 2)

    def test_edge_unknown_node_rejected(self):
        with pytest.raises(ModelError, match="unknown node"):
            DagBuilder().node("a", 1).edge("a", "b")

    def test_cycle_detected_at_build(self):
        from repro.exceptions import CycleError

        builder = (
            DagBuilder().nodes({"a": 1, "b": 1}).edge("a", "b").edge("b", "a")
        )
        with pytest.raises(CycleError):
            builder.build()
