"""Unit tests for :mod:`repro.model.dag`."""

import pytest

from repro.exceptions import CycleError, ModelError
from repro.model import DAG, Node


def make(nodes, edges=()):
    return DAG(nodes, edges)


class TestConstruction:
    def test_from_mapping(self):
        dag = make({"a": 1, "b": 2})
        assert dag.node_names == ("a", "b")
        assert dag.wcet("a") == 1

    def test_from_node_objects(self):
        dag = make([Node("a", 1), Node("b", 2)], [("a", "b")])
        assert dag.has_edge("a", "b")

    def test_duplicate_node_rejected(self):
        with pytest.raises(ModelError, match="duplicate node"):
            make([Node("a", 1), Node("a", 2)])

    def test_unknown_edge_source_rejected(self):
        with pytest.raises(ModelError, match="unknown source"):
            make({"a": 1}, [("x", "a")])

    def test_unknown_edge_destination_rejected(self):
        with pytest.raises(ModelError, match="unknown destination"):
            make({"a": 1}, [("a", "x")])

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError, match="self-loop"):
            make({"a": 1}, [("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ModelError, match="duplicate edge"):
            make({"a": 1, "b": 1}, [("a", "b"), ("a", "b")])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            make({"a": 1, "b": 1}, [("a", "b"), ("b", "a")])

    def test_long_cycle_rejected(self):
        with pytest.raises(CycleError):
            make({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c"), ("c", "a")])

    def test_non_node_rejected(self):
        with pytest.raises(ModelError, match="expected Node"):
            DAG(["nope"])  # type: ignore[list-item]


class TestAccessors:
    def test_len_iter_contains(self, diamond):
        assert len(diamond) == 4
        assert list(diamond) == ["s", "a", "b", "t"]
        assert "a" in diamond
        assert "zz" not in diamond

    def test_unknown_node_lookup(self, diamond):
        with pytest.raises(ModelError, match="unknown node"):
            diamond.node("zz")

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors("s")) == {"a", "b"}
        assert diamond.predecessors("t") == ("a", "b")
        assert diamond.predecessors("s") == ()
        assert diamond.successors("t") == ()

    def test_wcets_mapping(self, diamond):
        assert diamond.wcets() == {"s": 1, "a": 2, "b": 3, "t": 4}

    def test_siblings_diamond(self, diamond):
        assert set(diamond.siblings("a")) == {"b"}
        assert diamond.siblings("s") == ()

    def test_siblings_multiple_parents(self):
        # x and y both feed c; c's siblings are the other children of x, y.
        dag = make(
            {"x": 1, "y": 1, "c": 1, "d": 1, "e": 1},
            [("x", "c"), ("x", "d"), ("y", "c"), ("y", "e")],
        )
        assert set(dag.siblings("c")) == {"d", "e"}


class TestDerived:
    def test_volume(self, diamond):
        assert diamond.volume == 10

    def test_sources_sinks(self, diamond):
        assert diamond.sources == ("s",)
        assert diamond.sinks == ("t",)

    def test_multi_source_sink(self):
        dag = make({"a": 1, "b": 1, "c": 1}, [("a", "c")])
        assert set(dag.sources) == {"a", "b"}
        assert set(dag.sinks) == {"b", "c"}

    def test_topological_order_diamond(self, diamond):
        order = diamond.topological_order
        assert order.index("s") < order.index("a") < order.index("t")
        assert order.index("s") < order.index("b") < order.index("t")

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order == diamond.topological_order
        rebuilt = make({"s": 1, "a": 2, "b": 3, "t": 4},
                       [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
        assert rebuilt.topological_order == diamond.topological_order


class TestEquality:
    def test_equal_ignores_edge_order(self):
        d1 = make({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("a", "c")])
        d2 = make({"a": 1, "b": 1, "c": 1}, [("a", "c"), ("a", "b")])
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_unequal_wcets(self):
        assert make({"a": 1}) != make({"a": 2})

    def test_unequal_edges(self):
        d1 = make({"a": 1, "b": 1}, [("a", "b")])
        d2 = make({"a": 1, "b": 1})
        assert d1 != d2

    def test_not_equal_to_other_type(self, diamond):
        assert diamond != "diamond"
