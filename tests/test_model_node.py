"""Unit tests for :mod:`repro.model.node`."""

import pytest

from repro.exceptions import ModelError
from repro.model import Node


class TestNodeConstruction:
    def test_valid_node(self):
        node = Node("v1", 3.5)
        assert node.name == "v1"
        assert node.wcet == 3.5

    def test_integer_wcet_accepted(self):
        assert Node("v", 7).wcet == 7

    def test_zero_wcet_rejected(self):
        with pytest.raises(ModelError, match="WCET must be > 0"):
            Node("v", 0)

    def test_negative_wcet_rejected(self):
        with pytest.raises(ModelError, match="WCET must be > 0"):
            Node("v", -1.0)

    def test_nan_wcet_rejected(self):
        with pytest.raises(ModelError):
            Node("v", float("nan"))

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError, match="non-empty string"):
            Node("", 1.0)

    def test_non_string_name_rejected(self):
        with pytest.raises(ModelError, match="non-empty string"):
            Node(3, 1.0)  # type: ignore[arg-type]


class TestNodeSemantics:
    def test_frozen(self):
        node = Node("v", 1.0)
        with pytest.raises(AttributeError):
            node.wcet = 2.0  # type: ignore[misc]

    def test_equality_by_value(self):
        assert Node("v", 1.0) == Node("v", 1.0)
        assert Node("v", 1.0) != Node("v", 2.0)
        assert Node("v", 1.0) != Node("w", 1.0)

    def test_hashable(self):
        assert len({Node("v", 1.0), Node("v", 1.0), Node("w", 1.0)}) == 2
