"""Unit tests for :mod:`repro.model.priorities`."""

import pytest

from repro.exceptions import ModelError
from repro.model import DAGTask, DagBuilder, assign_priorities
from repro.model.priorities import POLICIES


def chain_task(name, wcets, period):
    builder = DagBuilder()
    names = [f"{name}{i}" for i in range(len(wcets))]
    for n, w in zip(names, wcets):
        builder.node(n, w)
    builder.chain(*names)
    return DAGTask(name, builder.build(), period=period)


def wide_task(name, width, wcet, period):
    builder = DagBuilder().node(f"{name}s", 1)
    leaves = []
    for i in range(width):
        leaf = f"{name}w{i}"
        builder.node(leaf, wcet)
        leaves.append(leaf)
    builder.fork(f"{name}s", leaves)
    return DAGTask(name, builder.build(), period=period)


@pytest.fixture
def tasks():
    return [
        chain_task("long_chain", [10, 10, 10], period=200.0),   # L=30, vol=30
        wide_task("wide", 4, 10, period=100.0),                  # L=11, vol=41
        chain_task("short", [5], period=150.0),                  # L=5, vol=5
    ]


class TestPolicies:
    def test_deadline_monotonic(self, tasks):
        ts = assign_priorities(tasks, "deadline-monotonic")
        assert ts.names == ("wide", "short", "long_chain")

    def test_critical_path_monotonic(self, tasks):
        ts = assign_priorities(tasks, "critical-path-monotonic")
        assert ts.names == ("long_chain", "wide", "short")

    def test_density_monotonic(self, tasks):
        # densities: wide 0.41, long_chain 0.15, short 0.033
        ts = assign_priorities(tasks, "density-monotonic")
        assert ts.names == ("wide", "long_chain", "short")

    def test_slack_monotonic(self, tasks):
        # D-L: wide 89, short 145, long_chain 170
        ts = assign_priorities(tasks, "slack-monotonic")
        assert ts.names == ("wide", "short", "long_chain")

    def test_custom_key(self, tasks):
        ts = assign_priorities(tasks, policy=lambda t: t.name)
        assert ts.names == ("long_chain", "short", "wide")

    def test_priorities_dense(self, tasks):
        ts = assign_priorities(tasks)
        assert [t.priority for t in ts] == [0, 1, 2]

    def test_unknown_policy(self, tasks):
        with pytest.raises(ModelError, match="unknown policy"):
            assign_priorities(tasks, "lottery")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            assign_priorities([])

    def test_registry_complete(self):
        assert set(POLICIES) == {
            "deadline-monotonic",
            "critical-path-monotonic",
            "density-monotonic",
            "slack-monotonic",
        }
