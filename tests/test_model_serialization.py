"""Unit tests for :mod:`repro.model.serialization`."""

import pytest

from repro.exceptions import ModelError
from repro.model import (
    DAGTask,
    TaskSet,
    dag_from_dict,
    dag_to_dict,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_from_json,
    taskset_to_dict,
    taskset_to_json,
)


class TestDagRoundTrip:
    def test_round_trip(self, diamond):
        assert dag_from_dict(dag_to_dict(diamond)) == diamond

    def test_edges_optional(self):
        dag = dag_from_dict({"nodes": {"a": 1.0}})
        assert len(dag) == 1

    def test_malformed_payload(self):
        with pytest.raises(ModelError, match="malformed DAG"):
            dag_from_dict({"no_nodes": {}})
        with pytest.raises(ModelError, match="malformed DAG"):
            dag_from_dict(None)  # type: ignore[arg-type]


class TestTaskRoundTrip:
    def test_round_trip(self, diamond):
        task = DAGTask("t", diamond, period=50.0, deadline=40.0, priority=2)
        assert task_from_dict(task_to_dict(task)) == task

    def test_priority_optional(self, diamond):
        payload = task_to_dict(DAGTask("t", diamond, period=50.0))
        del payload["priority"]
        assert task_from_dict(payload).priority is None

    def test_malformed_payload(self):
        with pytest.raises(ModelError, match="malformed task"):
            task_from_dict({"name": "x"})


class TestTasksetRoundTrip:
    @pytest.fixture
    def taskset(self, diamond, chain):
        return TaskSet([
            DAGTask("hi", diamond, period=50.0, priority=0),
            DAGTask("lo", chain, period=80.0, priority=1),
        ])

    def test_dict_round_trip(self, taskset):
        rebuilt = taskset_from_dict(taskset_to_dict(taskset))
        assert rebuilt.names == taskset.names
        assert rebuilt.task("hi") == taskset.task("hi")

    def test_json_round_trip(self, taskset):
        rebuilt = taskset_from_json(taskset_to_json(taskset))
        assert rebuilt.names == taskset.names
        assert rebuilt.total_utilization == pytest.approx(
            taskset.total_utilization
        )

    def test_json_compact(self, taskset):
        text = taskset_to_json(taskset, indent=None)
        assert "\n" not in text

    def test_invalid_json(self):
        with pytest.raises(ModelError, match="invalid JSON"):
            taskset_from_json("{nope")

    def test_malformed_taskset(self):
        with pytest.raises(ModelError, match="malformed task-set"):
            taskset_from_dict({"no_tasks": []})
