"""Unit tests for :mod:`repro.model.task`."""

import pytest

from repro.exceptions import ModelError
from repro.model import DAGTask, DagBuilder


class TestConstruction:
    def test_implicit_deadline(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        assert task.deadline == 100.0

    def test_constrained_deadline(self, diamond):
        task = DAGTask("t", diamond, period=100.0, deadline=50.0)
        assert task.deadline == 50.0

    def test_deadline_above_period_rejected(self, diamond):
        with pytest.raises(ModelError, match="0 < D <= T"):
            DAGTask("t", diamond, period=100.0, deadline=101.0)

    def test_zero_deadline_rejected(self, diamond):
        with pytest.raises(ModelError, match="0 < D <= T"):
            DAGTask("t", diamond, period=100.0, deadline=0.0)

    def test_non_positive_period_rejected(self, diamond):
        with pytest.raises(ModelError, match="period must be > 0"):
            DAGTask("t", diamond, period=0.0)

    def test_deadline_below_longest_path_rejected(self, diamond):
        # diamond longest path = 1 + 3 + 4 = 8
        with pytest.raises(ModelError, match="longest path"):
            DAGTask("t", diamond, period=100.0, deadline=7.0)

    def test_empty_name_rejected(self, diamond):
        with pytest.raises(ModelError, match="non-empty string"):
            DAGTask("", diamond, period=10.0)

    def test_graph_type_checked(self):
        with pytest.raises(ModelError, match="must be a DAG"):
            DAGTask("t", "not a dag", period=10.0)  # type: ignore[arg-type]


class TestDerived:
    def test_volume_and_longest_path(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        assert task.volume == 10
        assert task.longest_path == 8  # s(1) -> b(3) -> t(4)

    def test_chain_longest_path_equals_volume(self, chain):
        task = DAGTask("t", chain, period=100.0)
        assert task.longest_path == task.volume == 14

    def test_utilization_density(self, diamond):
        task = DAGTask("t", diamond, period=40.0, deadline=20.0)
        assert task.utilization == pytest.approx(0.25)
        assert task.density == pytest.approx(0.5)

    def test_q_and_n_nodes(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        assert task.n_nodes == 4
        assert task.q == 3

    def test_npr_wcets_order(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        assert task.npr_wcets() == [1, 2, 3, 4]

    def test_largest_nprs(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        assert task.largest_nprs(2) == [4, 3]
        assert task.largest_nprs(10) == [4, 3, 2, 1]
        assert task.largest_nprs(0) == []

    def test_largest_nprs_negative_rejected(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        with pytest.raises(ModelError):
            task.largest_nprs(-1)


class TestPriority:
    def test_with_priority_copies(self, diamond):
        task = DAGTask("t", diamond, period=100.0)
        prioritised = task.with_priority(3)
        assert prioritised.priority == 3
        assert task.priority is None
        assert prioritised.graph == task.graph

    def test_equality_includes_priority(self, diamond):
        t1 = DAGTask("t", diamond, period=100.0, priority=1)
        t2 = DAGTask("t", diamond, period=100.0, priority=2)
        assert t1 != t2
        assert t1 == DAGTask("t", diamond, period=100.0, priority=1)

    def test_hashable(self, diamond):
        t1 = DAGTask("t", diamond, period=100.0, priority=1)
        assert len({t1, DAGTask("t", diamond, period=100.0, priority=1)}) == 1


def test_single_node_task():
    dag = DagBuilder().node("n", 5).build()
    task = DAGTask("t", dag, period=10.0)
    assert task.q == 0
    assert task.longest_path == 5
    assert task.volume == 5
