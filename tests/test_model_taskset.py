"""Unit tests for :mod:`repro.model.taskset`."""

import pytest

from repro.exceptions import ModelError
from repro.model import DAGTask, DagBuilder, TaskSet


def simple_task(name: str, priority: int | None, period: float = 100.0) -> DAGTask:
    dag = DagBuilder().node(f"{name}-n", 5).build()
    return DAGTask(name, dag, period=period, priority=priority)


class TestConstruction:
    def test_orders_by_priority(self):
        ts = TaskSet([simple_task("b", 2), simple_task("a", 0), simple_task("c", 1)])
        assert ts.names == ("a", "c", "b")

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="at least one task"):
            TaskSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="duplicate task names"):
            TaskSet([simple_task("a", 0), simple_task("a", 1)])

    def test_missing_priority_rejected(self):
        with pytest.raises(ModelError, match="without a priority"):
            TaskSet([simple_task("a", None)])

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(ModelError, match="priorities must be unique"):
            TaskSet([simple_task("a", 0), simple_task("b", 0)])


class TestSubsets:
    @pytest.fixture
    def ts(self):
        return TaskSet([simple_task(f"t{i}", i) for i in range(4)])

    def test_hp(self, ts):
        assert [t.name for t in ts.hp("t2")] == ["t0", "t1"]
        assert ts.hp("t0") == ()

    def test_lp(self, ts):
        assert [t.name for t in ts.lp("t1")] == ["t2", "t3"]
        assert ts.lp("t3") == ()

    def test_rank(self, ts):
        assert ts.rank("t0") == 0
        assert ts.rank("t3") == 3

    def test_unknown_task(self, ts):
        with pytest.raises(ModelError, match="unknown task"):
            ts.task("zz")

    def test_container_protocol(self, ts):
        assert len(ts) == 4
        assert "t1" in ts
        assert "zz" not in ts

    def test_hp_lp_views_are_cached(self, ts):
        # The analyzer asks for these once per task per method; the
        # views must be built once and returned by identity afterwards.
        assert ts.hp("t2") is ts.hp("t2")
        assert ts.lp("t1") is ts.lp("t1")
        assert ts.hp("t2") == ts.tasks[:2]
        assert ts.lp("t1") == ts.tasks[2:]
        assert ts[0].name == "t0"
        assert [t.name for t in ts] == ["t0", "t1", "t2", "t3"]


class TestAggregates:
    def test_total_utilization(self):
        ts = TaskSet([
            simple_task("a", 0, period=10.0),   # u = 0.5
            simple_task("b", 1, period=20.0),   # u = 0.25
        ])
        assert ts.total_utilization == pytest.approx(0.75)

    def test_hyperperiod_bound_positive(self):
        ts = TaskSet([simple_task("a", 0, period=10.0)])
        assert ts.hyperperiod_bound() == pytest.approx(40.0)
