"""Unit tests for :mod:`repro.model.transforms`."""

import pytest

from repro.exceptions import ModelError
from repro.graph import longest_path_length, max_parallelism
from repro.model import (
    DAGTask,
    DagBuilder,
    TaskSet,
    scale_periods,
    scale_wcets,
    split_all_nodes,
    split_node,
    with_split_nodes,
)


@pytest.fixture
def taskset(diamond, chain):
    return TaskSet([
        DAGTask("a", diamond, period=50.0, deadline=40.0, priority=0),
        DAGTask("b", chain, period=80.0, priority=1),
    ])


class TestScaling:
    def test_scale_periods(self, taskset):
        scaled = scale_periods(taskset, 2.0)
        assert scaled.task("a").period == 100.0
        assert scaled.task("a").deadline == 80.0
        assert scaled.total_utilization == pytest.approx(
            taskset.total_utilization / 2.0
        )

    def test_scale_periods_preserves_priorities(self, taskset):
        assert scale_periods(taskset, 1.5).names == taskset.names

    def test_scale_periods_invalid_factor(self, taskset):
        with pytest.raises(ModelError):
            scale_periods(taskset, 0.0)

    def test_scale_periods_below_critical_path_rejected(self, taskset):
        # diamond L=8, D=40: factor 0.1 -> D=4 < 8
        with pytest.raises(ModelError):
            scale_periods(taskset, 0.1)

    def test_scale_wcets(self, taskset):
        scaled = scale_wcets(taskset, 0.5)
        assert scaled.task("a").volume == pytest.approx(5.0)
        assert scaled.task("a").period == 50.0
        assert scaled.total_utilization == pytest.approx(
            taskset.total_utilization / 2.0
        )

    def test_scale_wcets_invalid_factor(self, taskset):
        with pytest.raises(ModelError):
            scale_wcets(taskset, -1.0)


class TestSplitNode:
    def test_split_preserves_volume_and_length(self, diamond):
        split = split_node(diamond, "b", 3)
        assert split.volume == diamond.volume
        assert longest_path_length(split) == longest_path_length(diamond)
        assert len(split) == len(diamond) + 2

    def test_split_rewires_edges(self, diamond):
        split = split_node(diamond, "b", 2)
        assert split.has_edge("s", "b#0")
        assert split.has_edge("b#0", "b#1")
        assert split.has_edge("b#1", "t")
        assert "b" not in split

    def test_split_preserves_width(self, diamond):
        # A chain of sub-nodes cannot add parallelism.
        assert max_parallelism(split_node(diamond, "b", 4)) == max_parallelism(
            diamond
        )

    def test_split_exact_wcet_with_rounding(self):
        dag = DagBuilder().node("x", 10).build()
        split = split_node(dag, "x", 3)
        assert split.volume == pytest.approx(10.0)
        assert all(n.wcet > 0 for n in split.nodes)

    def test_split_one_part_renames(self, diamond):
        split = split_node(diamond, "b", 1)
        assert "b#0" in split
        assert split.volume == diamond.volume

    def test_split_unknown_node(self, diamond):
        with pytest.raises(ModelError):
            split_node(diamond, "zz", 2)

    def test_split_bad_parts(self, diamond):
        with pytest.raises(ModelError):
            split_node(diamond, "b", 0)

    def test_split_name_collision(self):
        dag = DagBuilder().nodes({"x": 4, "x#0": 1}).build()
        with pytest.raises(ModelError, match="collides"):
            split_node(dag, "x", 2)


class TestSplitAll:
    def test_threshold_enforced(self, fig1_tau3):
        split = split_all_nodes(fig1_tau3, 2.0)
        assert all(n.wcet <= 2.0 + 1e-9 for n in split.nodes)
        assert split.volume == fig1_tau3.volume

    def test_no_op_when_all_small(self, diamond):
        assert split_all_nodes(diamond, 100.0) == diamond

    def test_bad_threshold(self, diamond):
        with pytest.raises(ModelError):
            split_all_nodes(diamond, 0.0)

    def test_task_level_helper(self, diamond):
        task = DAGTask("t", diamond, period=50.0, priority=3)
        split = with_split_nodes(task, 2.0)
        assert split.priority == 3
        assert split.period == 50.0
        assert split.q > task.q  # more preemption points


class TestBlockingEffectOfSplitting:
    def test_splitting_lp_tasks_reduces_blocking(self, fig1_tasks):
        """Finer NPRs of lower-priority tasks shrink Δ (the LP tradeoff)."""
        from repro.core.blocking import lp_ilp_deltas
        from repro.model.transforms import with_split_nodes

        coarse = lp_ilp_deltas(fig1_tasks, 4)
        fine_tasks = [with_split_nodes(t, 2.0) for t in fig1_tasks]
        fine = lp_ilp_deltas(fine_tasks, 4)
        assert fine[0] <= coarse[0]
        assert fine[1] <= coarse[1]
