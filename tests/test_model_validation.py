"""Unit tests for :mod:`repro.model.validation`."""

import pytest

from repro.exceptions import ModelError
from repro.model import DAGTask, DagBuilder, TaskSet
from repro.model.validation import (
    check_task_fits,
    is_weakly_connected,
    validate_openmp_style,
    validate_taskset_for_analysis,
)


class TestConnectivity:
    def test_connected_diamond(self, diamond):
        assert is_weakly_connected(diamond)

    def test_single_node(self, single_node):
        assert is_weakly_connected(single_node)

    def test_disconnected(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1}).build()
        assert not is_weakly_connected(dag)


class TestOpenmpStyle:
    def test_diamond_passes(self, diamond):
        validate_openmp_style(diamond)

    def test_two_sources_rejected(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1, "c": 1}).join(["a", "b"], "c").build()
        with pytest.raises(ModelError, match="1 source"):
            validate_openmp_style(dag)

    def test_two_sinks_rejected(self):
        dag = DagBuilder().nodes({"a": 1, "b": 1, "c": 1}).fork("a", ["b", "c"]).build()
        with pytest.raises(ModelError, match="1 sink"):
            validate_openmp_style(dag)

    def test_disconnected_rejected(self):
        # Two disjoint chains share neither source nor sink counts of 1,
        # so force counts via cross structure: simply two isolated nodes.
        dag = DagBuilder().nodes({"a": 1, "b": 1}).build()
        with pytest.raises(ModelError):
            validate_openmp_style(dag)


class TestAnalysisPreflight:
    def test_valid(self, diamond):
        ts = TaskSet([DAGTask("t", diamond, period=50.0, priority=0)])
        validate_taskset_for_analysis(ts, 4)

    def test_bad_core_count(self, diamond):
        ts = TaskSet([DAGTask("t", diamond, period=50.0, priority=0)])
        with pytest.raises(ModelError, match="m must be >= 1"):
            validate_taskset_for_analysis(ts, 0)


class TestTaskFits:
    def test_fits(self, diamond):
        task = DAGTask("t", diamond, period=50.0)
        assert check_task_fits(task, m=1)

    def test_volume_exceeds_single_core(self, diamond):
        # vol = 10, D = 9 would violate L <= D (L = 8 <= 9 fine), vol/m = 10 > 9
        task = DAGTask("t", diamond, period=9.0)
        assert not check_task_fits(task, m=1)
        assert check_task_fits(task, m=2)
