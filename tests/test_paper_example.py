"""End-to-end reproduction of the paper's worked example (Fig. 1, Tables I–III).

Every number this file asserts appears verbatim in the paper; this is
the ground-truth regression suite for the whole analysis pipeline.
"""

import pytest

from repro.experiments.figure1 import (
    DELTA3_LP_ILP,
    DELTA3_LP_MAX,
    DELTA4_LP_ILP,
    DELTA4_LP_MAX,
    FIGURE1_M,
    TABLE1_EXPECTED,
    TABLE2_EXPECTED,
    TABLE3_EXPECTED,
    figure1_lp_tasks,
    figure1_table1,
    figure1_table2,
    figure1_table3,
    paper_deltas,
)


class TestTable1:
    def test_all_values(self):
        assert figure1_table1() == TABLE1_EXPECTED

    def test_mu2_zero_beyond_width(self):
        """τ2 has maximum parallelism 2, so μ2[3] = μ2[4] = 0."""
        assert figure1_table1()["tau2"][2:] == [0.0, 0.0]

    def test_mu4_zero_at_four(self):
        """τ4 has maximum parallelism 3, so μ4[4] = 0."""
        assert figure1_table1()["tau4"][3] == 0.0

    @pytest.mark.parametrize("method", ["ilp", "ilp-paper"])
    def test_ilp_solvers_reproduce_table1(self, method):
        assert figure1_table1(mu_method=method) == TABLE1_EXPECTED


class TestTable2:
    def test_scenarios(self):
        got = {(s.parts, s.cardinality) for s in figure1_table2()}
        assert got == set(TABLE2_EXPECTED)

    def test_count_is_p4(self):
        assert len(figure1_table2()) == 5


class TestTable3:
    def test_all_values(self):
        assert figure1_table3() == TABLE3_EXPECTED

    def test_maximum_is_s3(self):
        """The paper: ρ[s3] = 19 is the maximum over e_4."""
        table = figure1_table3()
        assert max(table.values()) == table[(2, 1, 1)] == 19.0


class TestDeltas:
    def test_lp_ilp(self):
        assert paper_deltas()["LP-ILP"] == (DELTA4_LP_ILP, DELTA3_LP_ILP)

    def test_lp_max(self):
        assert paper_deltas()["LP-max"] == (DELTA4_LP_MAX, DELTA3_LP_MAX)

    def test_paper_pessimism_gap(self):
        """LP-max overestimates by exactly 1 on both terms here."""
        deltas = paper_deltas()
        assert deltas["LP-max"][0] - deltas["LP-ILP"][0] == 1.0
        assert deltas["LP-max"][1] - deltas["LP-ILP"][1] == 1.0


class TestFixtureIntegrity:
    def test_four_tasks(self):
        tasks = figure1_lp_tasks()
        assert [t.name for t in tasks] == ["tau1", "tau2", "tau3", "tau4"]

    def test_node_counts(self):
        tasks = figure1_lp_tasks()
        assert [t.n_nodes for t in tasks] == [8, 4, 5, 5]

    def test_m_is_four(self):
        assert FIGURE1_M == 4

    def test_wcets_match_paper_labels(self):
        """Spot-check the C_{i,j} the paper quotes by name."""
        tasks = {t.name: t for t in figure1_lp_tasks()}
        assert tasks["tau2"].graph.wcet("v2,2") == 4
        assert tasks["tau3"].graph.wcet("v3,1") == 6
        assert tasks["tau4"].graph.wcet("v4,1") == 5
        assert tasks["tau4"].graph.wcet("v4,4") == 5
        assert tasks["tau1"].graph.wcet("v1,6") == 3
        assert tasks["tau1"].graph.wcet("v1,8") == 3
