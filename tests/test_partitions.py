"""Unit tests for :mod:`repro.combinatorics.partitions`."""

import pytest

from repro.combinatorics import (
    partition_count,
    partition_count_pentagonal,
    partitions,
)
from repro.exceptions import ReproError

#: p(0)..p(16) from OEIS A000041.
KNOWN_P = [1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42, 56, 77, 101, 135, 176, 231]


class TestPartitions:
    def test_paper_table2(self):
        """e_4 is exactly the five scenarios of the paper's Table II."""
        assert list(partitions(4)) == [
            (4,),
            (3, 1),
            (2, 2),
            (2, 1, 1),
            (1, 1, 1, 1),
        ]

    def test_zero(self):
        assert list(partitions(0)) == [()]

    def test_one(self):
        assert list(partitions(1)) == [(1,)]

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            list(partitions(-1))

    @pytest.mark.parametrize("m", range(0, 12))
    def test_each_partition_sums_to_m(self, m):
        for parts in partitions(m):
            assert sum(parts) == m
            assert tuple(sorted(parts, reverse=True)) == parts

    @pytest.mark.parametrize("m", range(0, 12))
    def test_no_duplicates(self, m):
        seen = list(partitions(m))
        assert len(seen) == len(set(seen))


class TestCounting:
    @pytest.mark.parametrize("m", range(len(KNOWN_P)))
    def test_known_values_direct(self, m):
        assert partition_count(m) == KNOWN_P[m]

    @pytest.mark.parametrize("m", range(len(KNOWN_P)))
    def test_known_values_pentagonal(self, m):
        """The paper cites Euler's pentagonal formulation for p(m)."""
        assert partition_count_pentagonal(m) == KNOWN_P[m]

    @pytest.mark.parametrize("m", range(0, 20))
    def test_counting_matches_enumeration(self, m):
        assert partition_count(m) == sum(1 for _ in partitions(m))

    def test_two_implementations_agree_further(self):
        for m in range(0, 40):
            assert partition_count(m) == partition_count_pentagonal(m)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            partition_count(-3)
        with pytest.raises(ReproError):
            partition_count_pentagonal(-3)
