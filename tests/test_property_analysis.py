"""Property-based tests on whole-task-set analysis dominance relations."""

import numpy as np
import pytest

from repro.core import AnalysisMethod, analyze_taskset
from repro.core.blocking import lp_ilp_deltas, lp_max_deltas
from repro.generator import GROUP1, GROUP2, generate_taskset

#: (seed, m, U, profile) grid — deterministic "random" regression corpus.
CASES = [
    (seed, m, u, profile)
    for seed in range(6)
    for (m, u) in [(2, 1.0), (4, 2.0), (8, 3.0)]
    for profile in (GROUP1, GROUP2)
]


@pytest.mark.parametrize("seed,m,u,profile", CASES)
def test_per_task_response_dominance(seed, m, u, profile):
    """FP-ideal ≤ LP-ILP ≤ LP-max response bound, per task, always."""
    rng = np.random.default_rng(seed)
    taskset = generate_taskset(rng, u, profile)
    fp = analyze_taskset(taskset, m, AnalysisMethod.FP_IDEAL)
    ilp = analyze_taskset(taskset, m, AnalysisMethod.LP_ILP)
    mx = analyze_taskset(taskset, m, AnalysisMethod.LP_MAX)
    for t_fp, t_ilp, t_mx in zip(fp.tasks, ilp.tasks, mx.tasks):
        if not (t_fp.analyzed and t_ilp.analyzed and t_mx.analyzed):
            break  # a failure upstream truncates comparability
        assert t_fp.response <= t_ilp.response + 1e-9
        assert t_ilp.response <= t_mx.response + 1e-9


@pytest.mark.parametrize("seed,m,u,profile", CASES)
def test_schedulability_dominance(seed, m, u, profile):
    """LP-max schedulable ⇒ LP-ILP schedulable ⇒ FP-ideal schedulable."""
    rng = np.random.default_rng(seed)
    taskset = generate_taskset(rng, u, profile)
    fp = analyze_taskset(taskset, m, AnalysisMethod.FP_IDEAL).schedulable
    ilp = analyze_taskset(taskset, m, AnalysisMethod.LP_ILP).schedulable
    mx = analyze_taskset(taskset, m, AnalysisMethod.LP_MAX).schedulable
    if mx:
        assert ilp
    if ilp:
        assert fp


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("m", [2, 4, 8])
def test_delta_dominance_on_random_tasksets(seed, m):
    """LP-ILP blocking never exceeds LP-max blocking (Eq. 8 vs Eq. 5)."""
    rng = np.random.default_rng(seed)
    taskset = generate_taskset(rng, m / 2, GROUP1)
    for task in taskset:
        lp_tasks = taskset.lp(task.name)
        ilp = lp_ilp_deltas(lp_tasks, m)
        mx = lp_max_deltas(lp_tasks, m)
        assert ilp[0] <= mx[0] + 1e-9
        assert ilp[1] <= mx[1] + 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_rho_solver_choice_never_changes_verdict(seed):
    """assignment vs paper-ILP ρ solvers agree on whole-task-set verdicts
    whenever the paper ILP is feasible for the maximising scenario; on
    these generated sets they agree outright."""
    rng = np.random.default_rng(seed)
    taskset = generate_taskset(rng, 2.0, GROUP1)
    a = analyze_taskset(taskset, 4, AnalysisMethod.LP_ILP, rho_solver="assignment")
    b = analyze_taskset(taskset, 4, AnalysisMethod.LP_ILP, rho_solver="ilp")
    for t_a, t_b in zip(a.tasks, b.tasks):
        # The ILP path skips infeasible scenarios, so its Δ can only be
        # smaller or equal...
        assert t_b.delta_m <= t_a.delta_m + 1e-9
    # ...hence the assignment verdict implies the paper-ILP verdict.
    if a.schedulable:
        assert b.schedulable


@pytest.mark.parametrize("seed", range(4))
def test_mu_method_choice_never_changes_results(seed):
    rng = np.random.default_rng(seed)
    taskset = generate_taskset(rng, 1.5, GROUP1)
    base = analyze_taskset(taskset, 2, AnalysisMethod.LP_ILP, mu_method="search")
    via_ilp = analyze_taskset(taskset, 2, AnalysisMethod.LP_ILP, mu_method="ilp")
    assert base.schedulable == via_ilp.schedulable
    for t_a, t_b in zip(base.tasks, via_ilp.tasks):
        assert t_a.response == pytest.approx(t_b.response)
        assert t_a.delta_m == pytest.approx(t_b.delta_m)
