"""Property-based tests on the analysis core (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics import partition_count, partition_count_pentagonal, partitions
from repro.core.scenarios import (
    execution_scenarios,
    rho_assignment,
    rho_bruteforce,
    rho_ilp,
)
from repro.core.workload import mu_array, mu_bruteforce, mu_value
from repro.graph import max_parallelism

from tests.strategies import mu_tables, random_dags


class TestMuProperties:
    @given(random_dags(max_nodes=8), st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_all_solvers_agree_with_bruteforce(self, dag, c):
        expected = mu_bruteforce(dag, c)
        assert mu_value(dag, c, "search") == expected
        assert mu_value(dag, c, "ilp") == expected
        assert mu_value(dag, c, "ilp-paper") == expected

    @given(random_dags())
    def test_mu1_is_max_wcet(self, dag):
        assert mu_value(dag, 1) == max(n.wcet for n in dag.nodes)

    @given(random_dags(max_nodes=9))
    @settings(deadline=None)
    def test_mu_zero_exactly_beyond_width(self, dag):
        width = max_parallelism(dag)
        mu = mu_array(dag, min(len(dag) + 1, 6))
        for c, value in enumerate(mu, start=1):
            if c <= width:
                assert value > 0
            else:
                assert value == 0.0

    @given(random_dags(max_nodes=9))
    @settings(deadline=None)
    def test_mu_bounded(self, dag):
        mu = mu_array(dag, 4)
        top = mu_value(dag, 1)
        for c, value in enumerate(mu, start=1):
            assert value <= c * top
            assert value <= dag.volume

    @given(random_dags(max_nodes=9))
    @settings(deadline=None)
    def test_positive_mu_implies_positive_below(self, dag):
        mu = mu_array(dag, 5)
        for c in range(1, 5):
            if mu[c] > 0:
                assert mu[c - 1] > 0


class TestRhoProperties:
    @given(mu_tables(), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_assignment_matches_bruteforce(self, table, m):
        for scenario in execution_scenarios(m):
            assert rho_assignment(table, scenario) == pytest.approx(
                rho_bruteforce(table, scenario)
            )

    @given(mu_tables(m=4))
    @settings(max_examples=60, deadline=None)
    def test_paper_ilp_never_exceeds_assignment(self, table):
        """The paper ILP is the assignment problem plus extra
        constraints, so (when feasible) it cannot exceed the assignment
        optimum — and with μ ≥ 0 it matches it exactly."""
        for scenario in execution_scenarios(4):
            via_ilp = rho_ilp(table, scenario, 4)
            if via_ilp is not None:
                assert via_ilp == pytest.approx(rho_assignment(table, scenario))

    @given(mu_tables(max_tasks=3), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_rho_monotone_in_tasks(self, table, m):
        """Adding a lower-priority task can only increase the blocking."""
        extended = dict(table)
        extended["extra"] = [5.0, 5.0, 5.0, 5.0][:4]
        for scenario in execution_scenarios(m):
            assert rho_assignment(extended, scenario) >= rho_assignment(
                table, scenario
            )


class TestPartitionProperties:
    @given(st.integers(0, 25))
    def test_counting_functions_agree(self, m):
        assert partition_count(m) == partition_count_pentagonal(m)

    @given(st.integers(0, 14))
    def test_enumeration_matches_count(self, m):
        parts = list(partitions(m))
        assert len(parts) == partition_count(m)
        assert len(set(parts)) == len(parts)
        assert all(sum(p) == m for p in parts)
