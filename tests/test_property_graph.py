"""Property-based tests on graph algorithms (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    algorithm1_par_sets,
    ancestors_map,
    descendants_map,
    is_antichain,
    longest_path_length,
    longest_path_nodes,
    max_parallelism,
    par_sets_oracle,
)
from repro.graph.properties import antichains
from repro.model.serialization import dag_from_dict, dag_to_dict

from tests.strategies import random_dags


class TestStructuralInvariants:
    @given(random_dags())
    def test_topological_order_respects_edges(self, dag):
        position = {n: i for i, n in enumerate(dag.topological_order)}
        assert all(position[u] < position[v] for u, v in dag.edges)

    @given(random_dags())
    def test_longest_path_bounds(self, dag):
        lp = longest_path_length(dag)
        assert max(n.wcet for n in dag.nodes) <= lp <= dag.volume

    @given(random_dags())
    def test_longest_path_nodes_is_a_path_with_that_length(self, dag):
        nodes = longest_path_nodes(dag)
        assert all(dag.has_edge(u, v) for u, v in zip(nodes, nodes[1:]))
        assert abs(sum(dag.wcet(n) for n in nodes) - longest_path_length(dag)) < 1e-9

    @given(random_dags())
    def test_serialization_round_trip(self, dag):
        assert dag_from_dict(dag_to_dict(dag)) == dag

    @given(random_dags())
    def test_reachability_maps_are_mutually_inverse(self, dag):
        succ = descendants_map(dag)
        pred = ancestors_map(dag)
        for u in dag.node_names:
            for v in succ[u]:
                assert u in pred[v]
            for v in pred[u]:
                assert u in succ[v]


class TestParallelismProperties:
    @given(random_dags(single_source=True))
    @settings(max_examples=150)
    def test_algorithm1_matches_oracle_on_single_source(self, dag):
        """The paper's Algorithm 1 (with the path-reachability check)
        must compute exactly the no-path relation on single-source DAGs."""
        assert algorithm1_par_sets(dag, edge_check="path") == par_sets_oracle(dag)

    @given(random_dags())
    def test_oracle_par_sets_are_symmetric_and_exclude_relatives(self, dag):
        par = par_sets_oracle(dag)
        succ = descendants_map(dag)
        for v, others in par.items():
            assert v not in others
            for w in others:
                assert v in par[w]
                assert w not in succ[v] and v not in succ[w]

    @given(random_dags(max_nodes=8))
    def test_width_equals_bruteforce_max_antichain(self, dag):
        brute = max((len(c) for c in antichains(dag)), default=0)
        assert max_parallelism(dag) == brute

    @given(random_dags(max_nodes=8))
    def test_all_enumerated_antichains_pass_is_antichain(self, dag):
        for chain in antichains(dag, max_size=3):
            assert is_antichain(dag, chain)
