"""Property-based tests for :mod:`repro.model.transforms`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workload import mu_value
from repro.graph import longest_path_length, max_parallelism
from repro.model.transforms import split_all_nodes, split_node

from tests.strategies import random_dags


class TestSplitNodeProperties:
    @given(random_dags(max_nodes=7), st.integers(1, 4))
    @settings(deadline=None)
    def test_volume_preserved(self, dag, parts):
        target = dag.node_names[0]
        split = split_node(dag, target, parts)
        assert split.volume == pytest.approx(dag.volume)
        assert len(split) == len(dag) + parts - 1

    @given(random_dags(max_nodes=7), st.integers(1, 4))
    @settings(deadline=None)
    def test_longest_path_preserved(self, dag, parts):
        target = dag.node_names[0]
        split = split_node(dag, target, parts)
        assert longest_path_length(split) == pytest.approx(
            longest_path_length(dag)
        )

    @given(random_dags(max_nodes=7), st.integers(2, 4))
    @settings(deadline=None)
    def test_width_preserved(self, dag, parts):
        """A chain of sub-nodes adds no parallelism."""
        target = dag.node_names[0]
        assert max_parallelism(split_node(dag, target, parts)) == (
            max_parallelism(dag)
        )

    @given(random_dags(max_nodes=7), st.integers(2, 3), st.floats(0.1, 5.0))
    @settings(deadline=None)
    def test_overhead_adds_exactly(self, dag, parts, overhead):
        target = dag.node_names[0]
        split = split_node(dag, target, parts, overhead=overhead)
        assert split.volume == pytest.approx(
            dag.volume + (parts - 1) * overhead
        )


class TestSplitAllProperties:
    @given(random_dags(max_nodes=6, max_wcet=12), st.floats(1.0, 6.0))
    @settings(deadline=None, max_examples=60)
    def test_threshold_holds_and_mu_shrinks(self, dag, threshold):
        split = split_all_nodes(dag, threshold)
        assert all(n.wcet <= threshold + 1e-9 for n in split.nodes)
        assert split.volume == pytest.approx(dag.volume)
        # Blocking-relevant workloads cannot grow from splitting.
        for c in (1, 2):
            assert mu_value(split, c) <= mu_value(dag, c) + 1e-9
