"""Unit tests for simulator components: jobs, dispatch policy, workloads."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.model import DAGTask, DagBuilder, TaskSet
from repro.sim.job import Job
from repro.sim.scheduler import pick_next, sort_key
from repro.sim.workloads import sporadic_releases, synchronous_periodic_releases


@pytest.fixture
def diamond_task(diamond):
    return DAGTask("t", diamond, period=100.0, priority=0)


class TestJob:
    def test_initial_ready_nodes_are_sources(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        assert job.ready_nodes() == ["s"]

    def test_node_lifecycle(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        job.mark_started("s")
        assert job.ready_nodes() == []
        done = job.mark_completed("s", 1.0)
        assert not done
        assert set(job.ready_nodes()) == {"a", "b"}
        job.mark_started("a")
        job.mark_started("b")
        job.mark_completed("a", 3.0)
        assert job.ready_nodes() == []  # t still waits for b
        job.mark_completed("b", 4.0)
        assert job.ready_nodes() == ["t"]
        job.mark_started("t")
        assert job.mark_completed("t", 8.0)
        assert job.finish == 8.0
        assert job.response_time == 8.0

    def test_double_start_rejected(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        job.mark_started("s")
        with pytest.raises(SimulationError, match="started twice"):
            job.mark_started("s")

    def test_start_before_preds_rejected(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        with pytest.raises(SimulationError, match="predecessors"):
            job.mark_started("t")

    def test_double_complete_rejected(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        job.mark_started("s")
        job.mark_completed("s", 1.0)
        with pytest.raises(SimulationError, match="completed twice"):
            job.mark_completed("s", 2.0)

    def test_response_before_finish_rejected(self, diamond_task):
        job = Job(diamond_task, 0, 0.0)
        with pytest.raises(SimulationError, match="not finished"):
            _ = job.response_time

    def test_absolute_deadline(self, diamond_task):
        job = Job(diamond_task, 0, 10.0)
        assert job.absolute_deadline == 110.0


class TestDispatchPolicy:
    def make_entry(self, diamond, priority, release, jid):
        task = DAGTask(f"p{priority}-{jid}", diamond, period=100.0, priority=priority)
        return (Job(task, jid, release), "s")

    def test_priority_wins(self, diamond):
        lo = self.make_entry(diamond, 5, 0.0, 0)
        hi = self.make_entry(diamond, 1, 5.0, 1)
        ready = [lo, hi]
        assert pick_next(ready) is hi
        assert ready == [lo]

    def test_release_breaks_priority_tie(self, diamond):
        first = self.make_entry(diamond, 1, 0.0, 0)
        second = self.make_entry(diamond, 1, 5.0, 1)
        assert pick_next([second, first]) is first

    def test_empty_pool(self):
        assert pick_next([]) is None

    def test_sort_key_topological_rank(self, diamond):
        task = DAGTask("t", diamond, period=100.0, priority=0)
        job = Job(task, 0, 0.0)
        key_s = sort_key((job, "s"))
        key_t = sort_key((job, "t"))
        assert key_s < key_t


class TestWorkloads:
    @pytest.fixture
    def taskset(self, diamond, chain):
        return TaskSet([
            DAGTask("a", diamond, period=10.0, priority=0),
            DAGTask("b", chain, period=25.0, priority=1),
        ])

    def test_synchronous_counts(self, taskset):
        releases = synchronous_periodic_releases(taskset, 50.0)
        assert sum(1 for _, n in releases if n == "a") == 5
        assert sum(1 for _, n in releases if n == "b") == 2

    def test_synchronous_sorted(self, taskset):
        releases = synchronous_periodic_releases(taskset, 50.0)
        times = [t for t, _ in releases]
        assert times == sorted(times)

    def test_synchronous_all_release_at_zero(self, taskset):
        releases = synchronous_periodic_releases(taskset, 50.0)
        at_zero = {n for t, n in releases if t == 0.0}
        assert at_zero == {"a", "b"}

    def test_synchronous_bad_horizon(self, taskset):
        with pytest.raises(SimulationError):
            synchronous_periodic_releases(taskset, 0.0)

    def test_sporadic_respects_min_separation(self, taskset, rng):
        releases = sporadic_releases(rng, taskset, 500.0)
        by_task: dict[str, list[float]] = {}
        for t, n in releases:
            by_task.setdefault(n, []).append(t)
        for name, times in by_task.items():
            period = taskset.task(name).period
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(g >= period - 1e-9 for g in gaps)

    def test_sporadic_jitter_validation(self, taskset, rng):
        with pytest.raises(SimulationError):
            sporadic_releases(rng, taskset, 100.0, max_jitter=-0.1)

    def test_sporadic_deterministic(self, taskset):
        a = sporadic_releases(np.random.default_rng(3), taskset, 200.0)
        b = sporadic_releases(np.random.default_rng(3), taskset, 200.0)
        assert a == b
