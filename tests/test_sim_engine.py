"""Unit tests for the discrete-event simulator."""

import pytest

from repro.exceptions import SimulationError
from repro.model import DAGTask, DagBuilder, TaskSet
from repro.sim import simulate, synchronous_periodic_releases


def chain_task(name, wcets, period, priority):
    builder = DagBuilder()
    names = [f"{name}{i}" for i in range(len(wcets))]
    for n, w in zip(names, wcets):
        builder.node(n, w)
    builder.chain(*names)
    return DAGTask(name, builder.build(), period=period, priority=priority)


def forkjoin_task(name, period, priority):
    dag = (
        DagBuilder()
        .nodes({f"{name}f": 1, f"{name}a": 4, f"{name}b": 3, f"{name}j": 1})
        .fork(f"{name}f", [f"{name}a", f"{name}b"])
        .join([f"{name}a", f"{name}b"], f"{name}j")
        .build()
    )
    return DAGTask(name, dag, period=period, priority=priority)


class TestMakespans:
    def test_forkjoin_two_cores(self):
        task = forkjoin_task("t", 50.0, 0)
        result = simulate(TaskSet([task]), 2, [(0.0, "t")])
        assert result.max_response("t") == 6.0  # 1 + max(4,3) + 1

    def test_forkjoin_one_core_serialises(self):
        task = forkjoin_task("t", 50.0, 0)
        result = simulate(TaskSet([task]), 1, [(0.0, "t")])
        assert result.max_response("t") == 9.0  # volume

    def test_extra_cores_do_not_help_beyond_width(self):
        task = forkjoin_task("t", 50.0, 0)
        r2 = simulate(TaskSet([task]), 2, [(0.0, "t")])
        r8 = simulate(TaskSet([task]), 8, [(0.0, "t")])
        assert r2.max_response("t") == r8.max_response("t")


class TestNonPreemption:
    def test_npr_blocks_higher_priority(self):
        lo = chain_task("lo", [10], period=100.0, priority=1)
        hi = chain_task("hi", [2], period=100.0, priority=0)
        ts = TaskSet([hi, lo])
        result = simulate(ts, 1, [(0.0, "lo"), (1.0, "hi")])
        # hi waits for lo's non-preemptable NPR: finishes at 12.
        assert result.max_response("hi") == 11.0

    def test_preemption_at_node_boundary(self):
        lo = chain_task("lo", [5, 5], period=100.0, priority=1)
        hi = chain_task("hi", [2], period=100.0, priority=0)
        ts = TaskSet([hi, lo])
        result = simulate(ts, 1, [(0.0, "lo"), (1.0, "hi")])
        # hi preempts lo at the first node boundary (t=5), runs 5-7.
        assert result.max_response("hi") == 6.0
        # lo resumes at 7, finishes at 12.
        assert result.max_response("lo") == 12.0

    def test_eager_preemption_takes_first_free_core(self):
        # Two lo tasks occupy both cores; hi arrives; the *first* lo to
        # reach a boundary (lo1 at t=3) yields, not the lowest priority.
        lo1 = chain_task("lo1", [3, 6], period=100.0, priority=1)
        lo2 = chain_task("lo2", [8, 2], period=100.0, priority=2)
        hi = chain_task("hi", [4], period=100.0, priority=0)
        ts = TaskSet([hi, lo1, lo2])
        result = simulate(
            ts, 2, [(0.0, "lo1"), (0.0, "lo2"), (1.0, "hi")]
        )
        # hi starts at t=3 on lo1's core, finishes t=7 -> response 6.
        assert result.max_response("hi") == 6.0


class TestPriorities:
    def test_higher_priority_dispatched_first(self):
        a = chain_task("a", [5], period=100.0, priority=0)
        b = chain_task("b", [5], period=100.0, priority=1)
        result = simulate(TaskSet([a, b]), 1, [(0.0, "b"), (0.0, "a")])
        assert result.max_response("a") == 5.0
        assert result.max_response("b") == 10.0


class TestPeriodicRuns:
    def test_all_jobs_recorded(self):
        task = forkjoin_task("t", 50.0, 0)
        ts = TaskSet([task])
        result = simulate(ts, 2, synchronous_periodic_releases(ts, 200.0))
        assert len(result.records) == 4
        assert result.all_deadlines_met
        assert result.unfinished_jobs == 0

    def test_deadline_miss_detected(self):
        # Two big tasks on one core: the lower one must miss.
        a = chain_task("a", [6], period=10.0, priority=0)
        b = chain_task("b", [6], period=10.0, priority=1)
        ts = TaskSet([a, b])
        result = simulate(ts, 1, [(0.0, "a"), (0.0, "b")])
        assert result.deadline_misses == 1
        assert not result.all_deadlines_met

    def test_busy_time_accounting(self):
        task = forkjoin_task("t", 50.0, 0)
        ts = TaskSet([task])
        result = simulate(ts, 2, [(0.0, "t")])
        assert result.busy_time == 9.0
        assert 0.0 < result.utilization_observed <= 1.0

    def test_task_stats(self):
        task = forkjoin_task("t", 50.0, 0)
        ts = TaskSet([task])
        result = simulate(ts, 2, synchronous_periodic_releases(ts, 100.0))
        stats = result.task_stats()["t"]
        assert stats.jobs == 2
        assert stats.max_response == 6.0
        assert stats.mean_response == 6.0
        assert stats.deadline_misses == 0


class TestValidation:
    def test_bad_core_count(self):
        task = forkjoin_task("t", 50.0, 0)
        with pytest.raises(SimulationError):
            simulate(TaskSet([task]), 0, [(0.0, "t")])

    def test_negative_release(self):
        task = forkjoin_task("t", 50.0, 0)
        with pytest.raises(SimulationError, match="negative release"):
            simulate(TaskSet([task]), 1, [(-1.0, "t")])

    def test_horizon_filters_releases(self):
        task = forkjoin_task("t", 50.0, 0)
        ts = TaskSet([task])
        result = simulate(ts, 2, [(0.0, "t"), (60.0, "t")], horizon=50.0)
        assert len(result.records) == 1

    def test_bad_horizon(self):
        task = forkjoin_task("t", 50.0, 0)
        with pytest.raises(SimulationError, match="horizon"):
            simulate(TaskSet([task]), 1, [(0.0, "t")], horizon=0.0)
