"""Unit tests for :mod:`repro.sim.trace` and engine trace recording."""

import pytest

from repro.exceptions import SimulationError
from repro.model import DAGTask, DagBuilder, TaskSet
from repro.sim import simulate, synchronous_periodic_releases
from repro.sim.trace import Interval, Trace


def forkjoin_task(name, period, priority):
    dag = (
        DagBuilder()
        .nodes({f"{name}f": 1, f"{name}a": 4, f"{name}b": 3, f"{name}j": 1})
        .fork(f"{name}f", [f"{name}a", f"{name}b"])
        .join([f"{name}a", f"{name}b"], f"{name}j")
        .build()
    )
    return DAGTask(name, dag, period=period, priority=priority)


@pytest.fixture
def traced_run():
    task = forkjoin_task("t", 50.0, 0)
    ts = TaskSet([task])
    result = simulate(
        ts, 2, synchronous_periodic_releases(ts, 100.0), record_trace=True
    )
    return ts, result


class TestRecording:
    def test_trace_absent_by_default(self):
        task = forkjoin_task("t", 50.0, 0)
        ts = TaskSet([task])
        result = simulate(ts, 2, [(0.0, "t")])
        assert result.trace is None

    def test_trace_present_and_complete(self, traced_run):
        ts, result = traced_run
        trace = result.trace
        assert trace is not None
        # 2 jobs x 4 nodes.
        assert len(trace.intervals) == 8
        assert {i.core for i in trace.intervals} <= {0, 1}

    def test_trace_validates(self, traced_run):
        ts, result = traced_run
        result.trace.validate(ts)

    def test_busy_time_matches_intervals(self, traced_run):
        _, result = traced_run
        assert sum(i.duration for i in result.trace.intervals) == pytest.approx(
            result.busy_time
        )

    def test_by_job(self, traced_run):
        _, result = traced_run
        intervals = result.trace.by_job("t", 0)
        assert [i.node for i in intervals][0] == "tf"
        assert [i.node for i in intervals][-1] == "tj"


class TestValidation:
    def make_taskset(self):
        return TaskSet([forkjoin_task("t", 50.0, 0)])

    def test_overlap_detected(self):
        ts = self.make_taskset()
        trace = Trace(1, (
            Interval(0, "t", 0, "tf", 0.0, 1.0),
            Interval(0, "t", 0, "ta", 0.5, 4.5),
        ))
        with pytest.raises(SimulationError, match="overlap"):
            trace.validate(ts)

    def test_wrong_duration_detected(self):
        ts = self.make_taskset()
        trace = Trace(1, (Interval(0, "t", 0, "tf", 0.0, 2.5),))
        with pytest.raises(SimulationError, match="WCET"):
            trace.validate(ts)

    def test_precedence_violation_detected(self):
        ts = self.make_taskset()
        trace = Trace(2, (
            Interval(0, "t", 0, "tf", 0.0, 1.0),
            Interval(1, "t", 0, "ta", 0.5, 4.5),  # starts before tf ends
        ))
        with pytest.raises(SimulationError, match="precedence"):
            trace.validate(ts)

    def test_missing_predecessor_detected(self):
        ts = self.make_taskset()
        trace = Trace(1, (Interval(0, "t", 0, "ta", 0.0, 4.0),))
        with pytest.raises(SimulationError, match="never did"):
            trace.validate(ts)

    def test_duplicate_execution_detected(self):
        ts = self.make_taskset()
        trace = Trace(2, (
            Interval(0, "t", 0, "tf", 0.0, 1.0),
            Interval(1, "t", 0, "tf", 2.0, 3.0),
        ))
        with pytest.raises(SimulationError, match="twice"):
            trace.validate(ts)


class TestGantt:
    def test_renders_lanes(self, traced_run):
        _, result = traced_run
        gantt = result.trace.ascii_gantt(width=40)
        lines = gantt.splitlines()
        assert lines[0].startswith("gantt 0 ..")
        assert lines[1].startswith("core0 |")
        assert lines[2].startswith("core1 |")
        assert "t" in lines[1]

    def test_empty_trace(self):
        assert Trace(2, ()).ascii_gantt() == "(empty trace)"
